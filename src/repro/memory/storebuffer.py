"""Store-coalescing buffer (Section 4.2, "Wide loads").

"To reduce the write port pressure, a store buffer coalesces stores from
different nodes together before writing them back to the SMC."  One
buffer sits between each row of ALUs and its SMC bank: stores enter as
individual words, are merged by line, and drain at a bounded rate.  The
drain completion time is what block commit (and therefore the measured
cycle counts of store-heavy kernels — the paper calls the scientific
codes "store bandwidth limited") waits on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..check.sanitizer import SANITIZER


@dataclass
class StoreBufferStats:
    stores: int = 0
    #: non-coalesced words retired by the drain engine (word granularity)
    words_drained: int = 0
    coalesced: int = 0


class StoreBuffer:
    """Coalesces word stores into lines and drains them at a fixed rate.

    Timing model: words arriving in the same line before that line drains
    are coalesced (free); the drain engine retires ``drain_words_per_cycle``
    words per cycle in arrival order, starting no earlier than each word's
    arrival.

    Pending lines are tracked in an insertion-ordered dict (line ->
    insertion sequence number) so capacity eviction retires the *oldest*
    line — the one the drain engine necessarily finished first.
    """

    def __init__(
        self,
        line_words: int = 8,
        drain_words_per_cycle: int = 2,
        capacity_lines: int = 16,
        name: str = "stbuf",
    ):
        self.line_words = line_words
        self.rate = drain_words_per_cycle
        self.capacity_lines = capacity_lines
        self.name = name
        self.stats = StoreBufferStats()
        #: most lines ever simultaneously pending (``storebuffer.peak_depth``)
        self.peak_lines = 0
        self._pending_lines: Dict[int, int] = {}
        self._insertions = 0
        self._drain_free_at = 0.0  # next cycle the drain engine is free
        self._last_drain_complete = 0.0

    def _evict_line(self) -> int:
        """Retire one pending line at capacity; returns its insertion
        sequence number.  FIFO: the first-inserted line has necessarily
        drained once the engine moved past it."""
        pending = self._pending_lines
        oldest = next(iter(pending))
        return pending.pop(oldest)

    def push(self, address: int, cycle: int) -> float:
        """Accept a word store at ``cycle``; return its drain-complete time."""
        self.stats.stores += 1
        line = address // self.line_words
        pending = self._pending_lines
        if line in pending and cycle <= self._drain_free_at:
            # Coalesced into a line still waiting to drain: no extra slot.
            self.stats.coalesced += 1
            return self._last_drain_complete
        if line not in pending:
            pending[line] = self._insertions
            self._insertions += 1
        if len(pending) > self.peak_lines:
            self.peak_lines = len(pending)
        start = max(float(cycle), self._drain_free_at)
        self._drain_free_at = start + 1.0 / self.rate
        self._last_drain_complete = self._drain_free_at
        self.stats.words_drained += 1
        if len(pending) > self.capacity_lines:
            evicted = self._evict_line()
            if SANITIZER.enabled:
                self._sanitize_eviction(evicted)
        if SANITIZER.enabled and self._last_drain_complete <= cycle:
            SANITIZER.report(
                "storebuffer.drain_after_arrival", self.name,
                "drain completed at or before the word arrived",
                arrival=cycle, complete=self._last_drain_complete,
            )
        return self._last_drain_complete

    def push_many(self, pushes) -> float:
        """Accept ``(address, cycle)`` word stores in order; one call per
        record instead of one per word.

        State, stats and the returned final drain-complete time are
        identical to sequential :meth:`push` calls (the reference
        semantics); the attribute traffic is hoisted out of the loop.
        """
        stats = self.stats
        line_words = self.line_words
        pending = self._pending_lines
        step = 1.0 / self.rate
        drain_free_at = self._drain_free_at
        last_complete = self._last_drain_complete
        capacity = self.capacity_lines
        peak = self.peak_lines
        sanitize = SANITIZER.enabled
        for address, cycle in pushes:
            stats.stores += 1
            line = address // line_words
            if line in pending and cycle <= drain_free_at:
                stats.coalesced += 1
                continue
            if line not in pending:
                pending[line] = self._insertions
                self._insertions += 1
            if len(pending) > peak:
                peak = len(pending)
            start = float(cycle) if cycle > drain_free_at else drain_free_at
            drain_free_at = start + step
            last_complete = drain_free_at
            stats.words_drained += 1
            if len(pending) > capacity:
                evicted = self._evict_line()
                if sanitize:
                    self._sanitize_eviction(evicted)
            if sanitize and last_complete <= cycle:
                SANITIZER.report(
                    "storebuffer.drain_after_arrival", self.name,
                    "drain completed at or before the word arrived",
                    arrival=cycle, complete=last_complete,
                )
        self._drain_free_at = drain_free_at
        self._last_drain_complete = last_complete
        self.peak_lines = peak
        return last_complete

    def _sanitize_eviction(self, evicted_index: int) -> None:
        """FIFO invariant: the evicted line must be the oldest pending."""
        pending = self._pending_lines
        if pending and evicted_index > min(pending.values()):
            SANITIZER.report(
                "storebuffer.fifo_eviction", self.name,
                "capacity eviction removed a line newer than one still "
                "pending",
                evicted_index=evicted_index,
                oldest_pending=min(pending.values()),
            )

    def drain_complete_cycle(self) -> int:
        """Cycle at which everything pushed so far has reached the SMC."""
        return int(-(-self._last_drain_complete // 1))

    def reset(self) -> None:
        self._pending_lines.clear()
        self._insertions = 0
        self._drain_free_at = 0.0
        self._last_drain_complete = 0.0
        self.peak_lines = 0
        self.stats = StoreBufferStats()
