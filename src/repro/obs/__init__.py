"""Observability for the simulation pipeline (``repro.obs``).

Two coupled layers, both following the :data:`~repro.perf.phases.PHASES`
pattern of near-zero cost when disabled:

* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms (``l1.hits``, ``net.operand_hops``,
  ``revitalize.broadcasts``, ``runcache.hit_rate``, ...), instrumented
  through the engines, the memory system and the perf layer, with
  per-run snapshots merged into ``RunResult.detail``;
* :mod:`repro.obs.trace` — a cycle-accurate event recorder emitting
  Chrome trace-event JSON (one track per ALU node / memory port / stream
  channel), plus the analysis behind the ``repro-trace`` CLI
  (:mod:`repro.obs.cli`).

This package deliberately imports nothing from ``repro.machine`` or
``repro.memory`` at module level — those layers import *it*, so the
instrumentation can sit directly on the hot paths without cycles.
"""

from contextlib import contextmanager

from .metrics import METRICS, Histogram, MetricsRegistry, collecting
from .trace import (
    CTL,
    EXEC,
    MEM,
    TRACE,
    TraceRecorder,
    diff_traces,
    load_trace,
    occupancy_heatmap,
    recording,
    subsystems,
    trace_span,
    utilization_table,
    validate_chrome_trace,
)


@contextmanager
def observability_paused():
    """Temporarily disable metrics and tracing around a block.

    The processor uses this to suppress the cold cache-warming pass of
    block-style runs, so recordings describe only the steady-state
    window.  A no-op (two attribute writes) when nothing is enabled.
    """
    metrics_was, trace_was = METRICS.enabled, TRACE.enabled
    METRICS.enabled = False
    TRACE.enabled = False
    try:
        yield
    finally:
        METRICS.enabled = metrics_was
        TRACE.enabled = trace_was


__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Histogram",
    "collecting",
    "TRACE",
    "TraceRecorder",
    "recording",
    "EXEC",
    "MEM",
    "CTL",
    "load_trace",
    "validate_chrome_trace",
    "subsystems",
    "trace_span",
    "occupancy_heatmap",
    "utilization_table",
    "diff_traces",
    "observability_paused",
]
