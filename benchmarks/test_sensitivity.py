"""Sensitivity sweeps over the substrate's design knobs.

Section 7 lists "more detailed metrics, including cycle time, power, and
area" as future work; the sweepable knobs here are the architectural
ones our model exposes: grid size, network hop delay, revitalize
broadcast cost and streaming-channel bandwidth.  Each sweep asserts the
physically-sensible monotonic trend.
"""

import os

from repro.machine import MachineConfig, MachineParams
from repro.perf import SweepPoint, run_points

#: Worker processes for the sweeps (serial by default; results are
#: identical either way).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def sweep(kernel_name, config, param_values, records=256):
    points = [
        SweepPoint(kernel=kernel_name, config=config, params=params,
                   records=records)
        for params in param_values
    ]
    return [result.cycles for result in run_points(points, jobs=JOBS)]


def test_grid_size_scaling(one_shot):
    """4x4 -> 8x8 -> 16x16: parallel kernels keep speeding up."""
    grids = [MachineParams(rows=4, cols=4),
             MachineParams(rows=8, cols=8),
             MachineParams(rows=16, cols=16)]

    result = one_shot(
        lambda: {
            "fft/S": sweep("fft", MachineConfig.S(), grids),
            "convert/S-O": sweep("convert", MachineConfig.S_O(), grids),
        }
    )
    for label, cycles in result.items():
        assert cycles[0] > cycles[1] > cycles[2], (label, cycles)
    print()
    for label, cycles in result.items():
        print(f"{label:14s} 4x4={cycles[0]}  8x8={cycles[1]}  16x16={cycles[2]}")


def test_hop_delay_sensitivity(one_shot):
    """Slower mesh hops hurt communication-heavy kernels."""
    hops = [MachineParams(hop_cycles=h) for h in (0.5, 1.0, 2.0)]
    result = one_shot(
        lambda: sweep("rijndael", MachineConfig.S_O_D(), hops, records=64)
    )
    assert result[0] < result[1] < result[2]
    print(f"\nrijndael S-O-D cycles at hop 0.5/1/2: {result}")


def test_revitalize_cost_sensitivity(one_shot):
    """The revitalize broadcast taxes every SIMD window."""
    costs = [MachineParams(revitalize_delay=d) for d in (0, 16, 64)]
    result = one_shot(lambda: sweep("fft", MachineConfig.S(), costs))
    assert result[0] < result[1] < result[2]
    print(f"\nfft S cycles at revitalize 0/16/64: {result}")


def test_channel_bandwidth_sensitivity(one_shot):
    """Streaming-channel bandwidth bounds record-hungry kernels."""
    channels = [MachineParams(channel_words_per_cycle=w) for w in (1, 4, 16)]
    result = one_shot(lambda: sweep("dct", MachineConfig.S_O(), channels,
                                    records=64))
    assert result[0] >= result[1] >= result[2]
    assert result[0] > result[2]
    print(f"\ndct S-O cycles at channel bw 1/4/16: {result}")
