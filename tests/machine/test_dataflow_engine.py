"""Dataflow engine timing semantics."""

import pytest

from repro.isa import Domain, KernelBuilder
from repro.machine import DataflowEngine, MachineConfig, MachineParams, map_window
from repro.machine.dataflow_engine import DeadlockError
from repro.memory import MemorySystem


def build_engine(kernel, config, params, iterations):
    memory = MemorySystem(params.rows, params.memory_timings())
    memory.configure_smc(config.smc_stream)
    window = map_window(kernel, config, params, iterations=iterations)
    return DataflowEngine(window, memory, seed=1), memory


def chain(length):
    b = KernelBuilder("chain", Domain.NETWORK, record_in=1, record_out=1)
    x = b.lo32(b.input(0))
    for _ in range(length):
        x = b.add(x, 1)
    b.output(b.pack64(x, x))
    return b.build()


def wide(width):
    b = KernelBuilder("wide", Domain.SCIENTIFIC, record_in=1, record_out=1)
    x = b.input(0)
    vals = [b.fmul(x, float(i)) for i in range(width)]
    acc = vals[0]
    for v in vals[1:]:
        acc = b.fadd(acc, v)
    b.output(acc)
    return b.build()


class TestChainTiming:
    def test_chain_cost_scales_with_length(self):
        params = MachineParams()
        short_eng, _ = build_engine(chain(10), MachineConfig.S_O(), params, 1)
        long_eng, _ = build_engine(chain(40), MachineConfig.S_O(), params, 1)
        t_short = short_eng.run().cycles
        t_long = long_eng.run().cycles
        assert t_long - t_short == pytest.approx(30, abs=6)

    def test_parallel_iterations_amortize(self):
        """64 independent chains cost barely more than one (ALU-parallel)."""
        params = MachineParams()
        one, _ = build_engine(chain(30), MachineConfig.S_O(), params, 1)
        many, _ = build_engine(chain(30), MachineConfig.S_O(), params, 64)
        t1 = one.run().cycles
        t64 = many.run().cycles
        assert t64 < 2.5 * t1


class TestResourceLimits:
    def test_single_issue_per_node(self):
        """A wide graph on a tiny grid is issue-bound."""
        params = MachineParams(rows=1, cols=1, slots_per_node=256)
        engine, _ = build_engine(wide(64), MachineConfig.S_O(), params, 1)
        timing = engine.run()
        assert timing.cycles >= 129  # 129+ instances, one per cycle

    def test_fetch_cycles_reported(self):
        params = MachineParams(fetch_bandwidth=10)
        engine, _ = build_engine(chain(20), MachineConfig.S(), params, 4)
        timing = engine.run()
        expected = -(-engine.window.machine_instructions // 10)
        assert timing.fetch_cycles == expected

    def test_store_drain_tracked(self):
        params = MachineParams()
        engine, _ = build_engine(wide(4), MachineConfig.S(), params, 8)
        timing = engine.run()
        assert timing.store_drain_cycle > 0
        assert timing.cycles >= timing.store_drain_cycle


class TestConstantDelivery:
    def test_const_reads_slow_the_window(self):
        """Without operand revitalization, constants eat regfile slots."""
        b = KernelBuilder("consts", Domain.GRAPHICS, record_in=1, record_out=1)
        x = b.input(0)
        acc = b.fmul(x, b.const(1.5, "c0"))
        for i in range(20):
            acc = b.fadd(acc, b.fmul(x, b.const(float(i) + 2, f"c{i + 1}")))
        b.output(acc)
        k = b.build()
        params = MachineParams(regfile_read_ports=2)
        s_engine, _ = build_engine(k, MachineConfig.S(), params, 32)
        so_engine, _ = build_engine(k, MachineConfig.S_O(), params, 32)
        assert s_engine.run().cycles > so_engine.run().cycles

    def test_regfile_read_count_in_stats(self):
        b = KernelBuilder("c", Domain.GRAPHICS, record_in=1, record_out=1)
        b.output(b.fmul(b.input(0), b.const(2.0, "k")))
        k = b.build()
        engine, _ = build_engine(k, MachineConfig.S(), MachineParams(), 4)
        timing = engine.run()
        assert timing.detail["regfile_reads"] == 4


class TestDeterminismAndErrors:
    def test_identical_runs_identical_cycles(self):
        params = MachineParams()
        e1, _ = build_engine(wide(16), MachineConfig.S_O(), params, 8)
        e2, _ = build_engine(wide(16), MachineConfig.S_O(), params, 8)
        assert e1.run().cycles == e2.run().cycles

    def test_deadlock_detection(self):
        params = MachineParams()
        engine, _ = build_engine(wide(4), MachineConfig.S_O(), params, 1)
        # Corrupt an operand count to create an unsatisfiable instance.
        # Out-of-band instance surgery invalidates the cached SoA
        # (rebase is the only mutation the array core is transparent to).
        engine.window.instances[-1].operands += 1
        if hasattr(engine.window, "_fastcore_soa"):
            del engine.window._fastcore_soa
        with pytest.raises(DeadlockError):
            engine.run()
