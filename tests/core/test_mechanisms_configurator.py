"""Table 3 mechanisms and the attribute-driven configurator."""

import pytest

from repro.analysis import characterize
from repro.core import (
    Mechanism,
    TABLE3,
    config_from_mechanisms,
    info,
    mechanisms_for,
    predicted_config,
)
from repro.kernels import all_specs, spec
from repro.machine import MachineConfig


class TestTable3:
    def test_six_mechanisms(self):
        assert len(TABLE3) == 6
        assert {row.mechanism for row in TABLE3} == set(Mechanism)

    def test_info_lookup(self):
        row = info(Mechanism.L0_DATA_STORE)
        assert row.attribute == "Indexed named constants"
        assert row.config_flag == "l0_data"


class TestMechanismSelection:
    def test_lut_kernels_want_l0(self):
        wanted = mechanisms_for(characterize(spec("blowfish").kernel()))
        assert Mechanism.L0_DATA_STORE in wanted

    def test_texture_kernels_want_cached_memory(self):
        wanted = mechanisms_for(characterize(spec("fragment-simple").kernel()))
        assert Mechanism.CACHED_MEMORY in wanted

    def test_variable_loops_want_local_pcs(self):
        wanted = mechanisms_for(characterize(spec("vertex-skinning").kernel()))
        assert Mechanism.LOCAL_PROGRAM_COUNTERS in wanted
        assert Mechanism.INSTRUCTION_REVITALIZATION not in wanted

    def test_static_kernels_want_revitalization(self):
        wanted = mechanisms_for(characterize(spec("fft").kernel()))
        assert Mechanism.INSTRUCTION_REVITALIZATION in wanted
        assert Mechanism.LOCAL_PROGRAM_COUNTERS not in wanted


class TestConfigAssembly:
    def test_assembled_config_is_legal(self):
        config = config_from_mechanisms(
            [Mechanism.STREAMED_MEMORY, Mechanism.LOCAL_PROGRAM_COUNTERS,
             Mechanism.L0_DATA_STORE]
        )
        assert config.local_pc and config.l0_data and config.smc_stream

    def test_operand_revit_dropped_without_inst_revit(self):
        config = config_from_mechanisms(
            [Mechanism.OPERAND_REVITALIZATION,
             Mechanism.LOCAL_PROGRAM_COUNTERS]
        )
        assert not config.operand_revitalize  # would be illegal

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("fft", "S"),
            ("lu", "S"),
            ("convert", "S-O"),
            ("vertex-simple", "S-O"),
            ("blowfish", "S-O-D"),
            ("rijndael", "S-O-D"),
            ("vertex-skinning", "M-D"),
            ("anisotropic-filter", "M-D"),
        ],
    )
    def test_predicted_config_follows_table3(self, name, expected):
        assert predicted_config(spec(name).kernel()).name == expected

    @pytest.mark.parametrize("s", all_specs(), ids=lambda s: s.name)
    def test_prediction_always_lands_on_a_named_point(self, s):
        config = predicted_config(s.kernel())
        assert config.name in {"S", "S-O", "S-O-D", "M", "M-D"}
