"""The six universal microarchitectural mechanisms (the paper's Table 3).

Each :class:`Mechanism` records the program attribute it serves, where in
the microarchitecture it is implemented, and which machine-configuration
flag enables it, so the configurator can go from measured kernel
attributes to a morph of the substrate mechanically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.characterize import KernelAttributes
from ..isa.kernel import ControlClass


class Mechanism(enum.Enum):
    """The universal mechanisms, by Table 3 row."""

    STREAMED_MEMORY = "software managed streamed memory"
    CACHED_MEMORY = "cached memory subsystem"
    OPERAND_REVITALIZATION = "local operand storage (operand revitalization)"
    L0_DATA_STORE = "software managed L0 data store at ALUs"
    INSTRUCTION_REVITALIZATION = (
        "local instruction storage (instruction revitalization)"
    )
    LOCAL_PROGRAM_COUNTERS = "local program counter control"


@dataclass(frozen=True)
class MechanismInfo:
    """One row of Table 3."""

    mechanism: Mechanism
    attribute: str
    implemented_at: str
    config_flag: str  # MachineConfig field it corresponds to


TABLE3: Tuple[MechanismInfo, ...] = (
    MechanismInfo(
        Mechanism.STREAMED_MEMORY,
        "Regular memory access",
        "L2 memory",
        "smc_stream",
    ),
    MechanismInfo(
        Mechanism.CACHED_MEMORY,
        "Irregular memory access",
        "L1 memory",
        "",  # always present; the L1 path is never disabled
    ),
    MechanismInfo(
        Mechanism.OPERAND_REVITALIZATION,
        "Scalar named constants",
        "Execution core, Register file",
        "operand_revitalize",
    ),
    MechanismInfo(
        Mechanism.L0_DATA_STORE,
        "Indexed named constants",
        "Execution core",
        "l0_data",
    ),
    MechanismInfo(
        Mechanism.INSTRUCTION_REVITALIZATION,
        "Tight loops",
        "Execution core, Instruction fetch",
        "inst_revitalize",
    ),
    MechanismInfo(
        Mechanism.LOCAL_PROGRAM_COUNTERS,
        "Data dependent branching",
        "Instruction fetch, Execution core",
        "local_pc",
    ),
)


def info(mechanism: Mechanism) -> MechanismInfo:
    """The Table 3 row describing ``mechanism``."""
    for row in TABLE3:
        if row.mechanism is mechanism:
            return row
    raise KeyError(mechanism)


def mechanisms_for(attributes: KernelAttributes) -> List[Mechanism]:
    """Which mechanisms a kernel's measured attributes call for.

    This is Table 3 read right-to-left: regular records want the streamed
    memory, irregular accesses want the cached L1, scalar constants want
    operand revitalization, table lookups want the L0 data store, loops
    want instruction reuse, and data-dependent bounds want local PCs.
    """
    wanted: List[Mechanism] = []
    if attributes.record_read or attributes.record_write:
        wanted.append(Mechanism.STREAMED_MEMORY)
    if attributes.irregular:
        wanted.append(Mechanism.CACHED_MEMORY)
    if attributes.constants:
        wanted.append(Mechanism.OPERAND_REVITALIZATION)
    if attributes.indexed_constants:
        wanted.append(Mechanism.L0_DATA_STORE)
    if attributes.control is ControlClass.RUNTIME_LOOP:
        wanted.append(Mechanism.LOCAL_PROGRAM_COUNTERS)
    else:
        wanted.append(Mechanism.INSTRUCTION_REVITALIZATION)
    return wanted


#: Table 3's "benchmarks that benefit" column, for the reproduction of
#: the table itself.
PAPER_BENEFICIARIES: Dict[Mechanism, str] = {
    Mechanism.STREAMED_MEMORY: "All",
    Mechanism.CACHED_MEMORY: "fragment-simple, fragment-reflection",
    Mechanism.OPERAND_REVITALIZATION: (
        "convert, dct, highpassfilter, md5, rijndael, all graphics programs"
    ),
    Mechanism.L0_DATA_STORE: "blowfish, rijndael, vertex-skinning",
    Mechanism.INSTRUCTION_REVITALIZATION: "All",
    Mechanism.LOCAL_PROGRAM_COUNTERS: (
        "vertex-skinning, anisotropic-filtering"
    ),
}
