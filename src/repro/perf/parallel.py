"""Parallel fan-out of independent simulation points.

Every (kernel, config, params, workload) simulation point is
deterministic and shares no state with any other point — the
:class:`~repro.machine.processor.GridProcessor` builds a fresh
:class:`~repro.memory.system.MemorySystem` per run — so a sweep is
embarrassingly parallel.  :func:`run_points` fans a list of
:class:`SweepPoint` descriptors out over a ``ProcessPoolExecutor`` and
returns results in input order; with one effective worker (``jobs <= 1``,
a single-CPU host, or a single point) it degrades to an identical
deterministic serial loop.

Since the scheduler refactor, :func:`run_points` is a *claim consumer*
over :mod:`repro.sched`: points are enqueued as rows in a claim store
(the WAL-mode sqlite ledger when one is configured, an in-memory
equivalent otherwise), the pool and serial paths only run points they
atomically claimed, and every finished point is recorded back as a
DONE row.  With a shared ledger that makes a sweep shardable — another
process (``repro-worker``, a second service, another host) claiming
rows of the same job never double-runs a fingerprint, and whatever it
finishes is adopted here instead of re-simulated.  Without a ledger
the store is process-local and behavior is byte-identical to the old
direct dispatch.

Dispatch is adaptive rather than naive:

* the worker count is clamped to ``min(jobs, os.cpu_count(), points)``
  so oversubscribing a small host never *slows down* a sweep;
* points are scheduled longest-first (by an instruction-count × records
  cost estimate) so a stray heavyweight kernel cannot serialize the
  tail of the pool, then results are restored to input order;
* ``pool.map`` gets a computed chunksize so per-task dispatch overhead
  amortizes over batches instead of dominating small points.

A :class:`SweepPoint` carries only picklable, *reconstructible* inputs —
the kernel's registry name rather than the kernel object (whose
``trips_fn`` closures do not pickle), and the workload's size and seed
rather than the records — so workers rebuild the exact same simulation
the parent would have run.  When ``cache_dir`` is set, workers share
the parent's on-disk :class:`~repro.perf.cache.RunCache`, so points
already simulated by any process are replayed from disk instead of
re-simulated.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.config import MachineConfig
from ..machine.params import MachineParams
from ..machine.stats import RunResult
from ..obs.ledger import LEDGER
from ..obs.metrics import METRICS
from ..obs.progress import PROGRESS, point_label
from .phases import PHASES, measuring


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point of a sweep, by value.

    ``workload_seed=None`` uses the benchmark module's default seed
    (what the sweep benchmarks pass); the experiment harness always
    pins an explicit seed.  ``cache_dir`` (a path string, kept
    picklable) lets workers consult and populate the shared on-disk
    run cache.  ``backend`` is a :mod:`repro.backends` registry name —
    workers resolve it locally, so points fan out for every simulator,
    not just the grid.  ``ledger_path`` routes the worker's durable
    run-ledger rows (:mod:`repro.obs.ledger`) into the parent's
    database; None leaves the worker's own configuration (usually the
    inherited ``REPRO_LEDGER`` environment) in charge.  ``engine_core``
    pins the :mod:`repro.machine.fastcore` selection for this one point
    (fingerprint and simulation alike); None defers to the ambient
    process-wide choice — service jobs pin it so a queued request runs
    on the core it asked for no matter which process picks it up.
    ``fingerprint`` optionally carries the point's precomputed content
    address (the scheduler fills it at enqueue time so claim rows are
    keyed before any worker runs); it is derived state, excluded from
    equality, and recomputed on demand when absent.
    """

    kernel: str                 # registry name (rebuilt in the worker)
    config: MachineConfig
    params: MachineParams
    records: int                # workload record count
    workload_seed: Optional[int] = None
    cache_dir: Optional[str] = None
    backend: str = "grid"       # backend registry name
    ledger_path: Optional[str] = None
    engine_core: Optional[str] = None
    fingerprint: Optional[str] = field(default=None, compare=False)


#: Thread-local out-param slot for :func:`simulate_point_meta`.  The
#: meta wrapper must call :func:`simulate_point` through its *module
#: global* (so fault injection and tests that monkeypatch it keep
#: working), yet still receive the cache verdict — the slot carries the
#: dict past whatever wrapper is installed.
_META_SLOT = threading.local()


def simulate_point(point: SweepPoint) -> RunResult:
    """Run one sweep point from scratch (also the process-pool worker).

    With ``point.cache_dir`` set the on-disk run cache is consulted
    first and populated after a miss, so concurrent workers (and later
    runs) share results through the filesystem.
    """
    return _simulate(point, getattr(_META_SLOT, "meta", None))


def _simulate(point: SweepPoint, meta: Optional[dict]) -> RunResult:
    """:func:`simulate_point` with an optional metadata out-param."""
    if point.engine_core is not None:
        # Pin the whole point — fingerprinting reads the active core,
        # so the address and the simulation must agree on it.
        from ..machine.fastcore import using_core

        with using_core(point.engine_core):
            return _simulate_pinned(point, meta)
    return _simulate_pinned(point, meta)


def _simulate_pinned(
    point: SweepPoint, meta: Optional[dict] = None
) -> RunResult:
    """:func:`simulate_point` body, engine core already resolved.

    When ``meta`` is a dict, ``meta["cache"]`` is set to the point's
    cache verdict (``"hit"``/``"miss"``/``"uncached"``) — what the
    claim consumers record on the DONE row.
    """
    # Lazy imports: repro.backends imports this package back (for the
    # fingerprint helpers), so resolving at call time avoids the cycle.
    from ..backends import dispatch, get
    from ..kernels.registry import spec

    if point.ledger_path is not None and not LEDGER.enabled:
        # Pool workers are fresh processes: adopt the parent's ledger
        # so fan-out rows land in the same database as serial runs.
        LEDGER.configure(point.ledger_path, mirror_env=False)
    s = spec(point.kernel)
    if point.workload_seed is None:
        records = s.workload(point.records)
    else:
        records = s.workload(point.records, point.workload_seed)
    kernel = s.kernel()
    backend = get(point.backend)
    cache = None
    fp = None
    if point.cache_dir is not None:
        from .cache import RunCache
        from .fingerprint import run_fingerprint

        cache = RunCache(point.cache_dir)
        fp = point.fingerprint
        if fp is None:
            fp = run_fingerprint(
                kernel, point.config, point.params, records,
                backend=backend.fingerprint_part(),
            )
        cached = cache.get(fp)
        if cached is not None:
            if meta is not None:
                meta["cache"] = "hit"
            if LEDGER.enabled:
                # Replays are runs too: a hit row keeps the ledger a
                # complete account of what a sweep delivered (wall
                # seconds ~0 distinguishes it from a simulation).
                from ..machine.fastcore import active_core

                LEDGER.record_run(
                    cached, backend=backend.name,
                    engine_core=active_core(), wall_seconds=0.0,
                    params=point.params, fingerprint=fp, cache="hit",
                )
            return cached
    if meta is not None:
        meta["cache"] = "miss" if fp is not None else "uncached"
    result = dispatch(
        backend, kernel, records, point.config, point.params,
        fingerprint=fp, cache_status="miss" if fp is not None else None,
    )
    if cache is not None:
        cache.put(fp, result)
    return result


def simulate_point_timed(point: SweepPoint) -> Tuple[RunResult, float]:
    """Like :func:`simulate_point`, returning (result, wall seconds)."""
    started = time.perf_counter()
    result = simulate_point(point)
    return result, time.perf_counter() - started


def simulate_point_meta(
    point: SweepPoint,
) -> Tuple[RunResult, float, str]:
    """One point with full accounting: (result, seconds, cache verdict).

    The claim consumers (serial loop, ``repro-worker``) record the
    verdict on the DONE row so a job's cache hit/miss split can be
    read straight from the claim table.
    """
    meta: dict = {}
    previous = getattr(_META_SLOT, "meta", None)
    _META_SLOT.meta = meta
    started = time.perf_counter()
    try:
        # Late-bound global on purpose: monkeypatched simulate_point
        # wrappers (fault injection, tests) must see meta-path runs too.
        result = simulate_point(point)
    finally:
        _META_SLOT.meta = previous
    seconds = time.perf_counter() - started
    return result, seconds, meta.get("cache", "uncached")


def _pool_worker_phased(point: SweepPoint, timed: bool):
    """Pool worker that also returns its PHASES snapshot.

    Workers are separate processes, so their phase accumulators would
    otherwise be lost; :func:`run_points` folds the returned snapshots
    back into the parent's ``PHASES`` when measurement is on.
    """
    with measuring() as acc:
        payload = simulate_point_timed(point) if timed else simulate_point(point)
        snapshot = acc.snapshot()
    return payload, snapshot


@dataclass
class DispatchStats:
    """How the last :func:`run_points` call actually dispatched.

    ``mode`` is ``"serial"`` (one effective worker), ``"pool"`` (the
    process pool ran), or ``"pool-fallback"`` (a pool was wanted but
    could not be spawned — e.g. a sandbox — and the sweep degraded to
    the serial loop).  ``busy_seconds`` is only populated for timed
    sweeps, where per-point wall times are measured anyway.
    """

    points: int = 0
    workers: int = 1
    mode: str = "serial"
    chunksize: int = 1
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    worker_phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def utilization(self) -> Optional[float]:
        """Fraction of worker-seconds spent simulating (timed runs only)."""
        if self.busy_seconds and self.wall_seconds:
            return min(
                1.0, self.busy_seconds / (self.workers * self.wall_seconds)
            )
        return None

    def as_dict(self) -> dict:
        """Plain-dict view for reports (``BENCH_perf.json``)."""
        return {
            "points": self.points,
            "workers": self.workers,
            "mode": self.mode,
            "chunksize": self.chunksize,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization,
            "worker_phase_seconds": dict(self.worker_phase_seconds),
        }


#: Dispatch accounting of the most recent :func:`run_points` call in
#: this process (None until the first sweep runs).
LAST_DISPATCH: Optional[DispatchStats] = None


def _estimated_cost(point: SweepPoint) -> int:
    """Relative cost estimate for longest-first scheduling.

    Simulation time scales with instructions × records; the registry's
    paper-reported instruction count is a good enough proxy.  Unknown
    kernels fall back to record count alone (any deterministic
    tie-break keeps results reproducible — order is restored anyway).
    """
    try:
        from ..kernels.registry import spec

        return spec(point.kernel).paper.instructions * point.records
    except (ImportError, KeyError):
        # Only "the registry is absent" and "the kernel is not in it"
        # degrade to the record-count fallback; a genuinely broken
        # registry (TypeError, AttributeError, ...) must fail loudly
        # instead of silently producing bad schedules.
        return point.records


def effective_workers(jobs: int, n_points: int) -> int:
    """Workers a sweep will actually use: jobs clamped to CPUs and points."""
    return max(1, min(jobs, os.cpu_count() or 1, n_points))


def _progress_label(point: SweepPoint) -> str:
    """The tracker label of one sweep point (``backend:kernel|config``)."""
    return point_label(point.backend, point.kernel, point.config.name)


def _drain_pool(mapped, points, order, window: int) -> List:
    """Consume pool results, publishing live progress as they land.

    ``pool.map`` yields in submission order as chunks complete, so each
    consumed payload retires ``points[order[i]]``.  The in-flight set
    models the pool's chunked scheduling: the first ``window``
    (= workers × chunksize) submissions start immediately and each
    completion admits the next — exact for the serial loop, a faithful
    approximation for the pool (workers own whole chunks).
    """
    results: List = []
    dispatched = min(window, len(order))
    for j in range(dispatched):
        PROGRESS.point_started(_progress_label(points[order[j]]))
    for payload in mapped:
        point = points[order[len(results)]]
        results.append(payload)
        PROGRESS.point_finished(_progress_label(point), backend=point.backend)
        if dispatched < len(order):
            PROGRESS.point_started(_progress_label(points[order[dispatched]]))
            dispatched += 1
    return results


def run_points(
    points: Sequence[SweepPoint],
    jobs: int = 1,
    timed: bool = False,
    session=None,
) -> List:
    """Simulate every point, fanning out over ``jobs`` worker processes.

    Returns one entry per point, in input order: the
    :class:`~repro.machine.stats.RunResult`, or ``(result, seconds)``
    pairs when ``timed=True``.  Dispatch degrades to a deterministic
    serial loop whenever a pool cannot help (``jobs <= 1``, one CPU,
    a single point) or cannot be spawned (sandboxed environments).

    The sweep runs as a claim consumer: points become PENDING rows of
    one job in a claim store (see :mod:`repro.sched`), both dispatch
    paths only run rows they claimed, and results are recorded back as
    DONE rows.  Rows another worker finished (shared-ledger sharding,
    resumed service jobs) are *adopted* — deserialized from the store
    instead of re-run — and rows whose worker died are reclaimed after
    lease expiry, so the call still returns the complete in-order
    result list.  Pass ``session`` (a
    :class:`~repro.sched.ClaimSession`) to run under an existing job —
    the service queue does, wiring its cancel events into claim
    revocation; otherwise a session is created from the points'
    ledger configuration and closed on return.

    When ``PHASES`` measurement is on, pool workers snapshot their own
    accumulators and the parent folds them back in, so phase breakdowns
    stay meaningful for parallel sweeps too (credited as worker time —
    the pool overlaps it with the parent's wall clock).  Dispatch
    accounting for the call is left in :data:`LAST_DISPATCH`.

    When the live progress tracker
    (:data:`repro.obs.progress.PROGRESS`) is enabled, the sweep
    publishes per-point started/finished events as it advances, so
    ``PROGRESS.get_current_state()`` (and the ``--progress`` ticker)
    reports completed/total, rate, ETA and the points in flight
    mid-sweep.
    """
    global LAST_DISPATCH
    from ..sched import session_for_points

    worker = simulate_point_timed if timed else simulate_point
    points = list(points)
    workers = effective_workers(jobs, len(points))
    want_phases = PHASES.enabled
    want_progress = PROGRESS.enabled
    if want_progress:
        PROGRESS.add_total(len(points))
    own_session = session is None
    if own_session:
        session = session_for_points(points)
    stats = DispatchStats(points=len(points))
    started = time.perf_counter()
    payloads: Dict[int, object] = {}
    try:
        enqueued = session.enqueue(points)
        session.raise_if_cancelled()
        if workers > 1:
            claimed = session.claim()
            # Longest-first keeps a heavyweight straggler from
            # serializing the tail; the index tie-break keeps
            # scheduling deterministic.
            order = sorted(
                claimed,
                key=lambda i: (-_estimated_cost(enqueued[i]), i),
            )
            chunksize = max(1, len(points) // (workers * 4))
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    if want_phases:
                        mapped = pool.map(
                            _pool_worker_phased,
                            [enqueued[i] for i in order],
                            itertools.repeat(timed),
                            chunksize=chunksize,
                        )
                    else:
                        mapped = pool.map(
                            worker,
                            [enqueued[i] for i in order],
                            chunksize=chunksize,
                        )
                    if want_progress:
                        shuffled = _drain_pool(
                            mapped, enqueued, order, workers * chunksize
                        )
                    else:
                        shuffled = list(mapped)
            except (OSError, PermissionError, NotImplementedError,
                    BrokenProcessPool):
                # Pools that cannot spawn (sandboxes) or whose workers
                # died mid-sweep degrade to the serial loop — never
                # wrong results, never a crash.  The claims go back to
                # PENDING so the loop below (or any other worker) can
                # take them.  KeyboardInterrupt propagates.
                stats.mode = "pool-fallback"
                session.release()
            else:
                stats.mode = "pool"
                stats.workers = workers
                stats.chunksize = chunksize
                for i, payload in zip(order, shuffled):
                    if want_phases:
                        payload, snapshot = payload
                        for name, elapsed in snapshot.items():
                            PHASES.add(name, elapsed)
                            stats.worker_phase_seconds[name] = (
                                stats.worker_phase_seconds.get(name, 0.0)
                                + elapsed
                            )
                    payloads[i] = payload
                    result = payload[0] if timed else payload
                    wall = payload[1] if timed else None
                    session.complete(i, result, wall_seconds=wall)
        if stats.mode != "pool":
            # Serial claim loop.  Durable stores claim one row at a
            # time so concurrent claimers interleave at point
            # granularity; the in-memory store has no other claimers,
            # so one claim takes the whole job.
            chunk = 1 if session.store.durable else None
            while True:
                session.raise_if_cancelled()
                batch = session.claim(limit=chunk)
                if not batch:
                    break
                for seq in batch:
                    payloads[seq] = _run_claimed(
                        session, enqueued, seq, timed, want_progress
                    )
        if len(payloads) < len(enqueued):
            # Rows another worker holds or finished: adopt DONE rows,
            # reclaim expired leases, poll live foreign claims.
            session.wait_remaining(
                payloads,
                runner=lambda seq: _run_claimed(
                    session, enqueued, seq, timed, want_progress
                ),
                timed=timed,
                on_adopted=(
                    (lambda seq, row: PROGRESS.point_finished(
                        _progress_label(enqueued[seq]),
                        backend=enqueued[seq].backend,
                    )) if want_progress else None
                ),
            )
        results = [payloads[i] for i in range(len(enqueued))]
    finally:
        if own_session:
            session.close()
    stats.wall_seconds = time.perf_counter() - started
    if timed:
        stats.busy_seconds = sum(seconds for _, seconds in results)
    utilization = stats.utilization
    if METRICS.enabled and utilization is not None:
        METRICS.gauge("dispatch.worker_utilization", utilization)
    LAST_DISPATCH = stats
    return results


def _run_claimed(session, points, seq: int, timed: bool,
                 want_progress: bool):
    """Run one claimed seq, record its DONE row, return the payload."""
    point = points[seq]
    label = _progress_label(point)
    if want_progress:
        PROGRESS.point_started(label)
    try:
        result, seconds, verdict = simulate_point_meta(point)
    except (KeyboardInterrupt, SystemExit):
        # An interrupt is not the point's fault: put the claim back so
        # a resumed sweep (or a sibling worker) runs it fresh.
        session.release()
        raise
    except BaseException as exc:
        # Fail the row loudly so sibling workers stop waiting on it
        # instead of polling a lease that will never resolve.
        session.fail(seq, f"{type(exc).__name__}: {exc}")
        raise
    session.complete(seq, result, wall_seconds=seconds, cache=verdict)
    if want_progress:
        PROGRESS.point_finished(label, backend=point.backend)
    return (result, seconds) if timed else result
