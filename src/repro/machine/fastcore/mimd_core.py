"""Max-plus affine fast core for the MIMD per-record loop.

For a fixed trip count, :meth:`MimdEngine._run_record`'s instruction
loop is a chain of ``issue = max(pc, ready(operands)); pc = issue + 1``
updates — a *max-plus (tropical) affine* function of the only inputs
that vary per record: the node's start cycle, the program counter after
the record-chunk loads, and the per-word load return times.  This
module compiles that function once per (engine, trip count) into a
plan matrix ``M`` over the basis

    x = [start, pc_after_chunks, word_ready[0], ..., word_ready[R-1]]

so that one vectorized ``(M + x).max(axis=1)`` yields the post-loop
program counter and every store's issue cycle.  The chunk-load phase
stays concrete (it reserves SMC ports / L1 banks statefully, and is the
``mimd_memory`` phase), as do the store-buffer pushes.

Coverage: plans exist only when the live instructions never take an L1
round trip mid-loop — no live LDI, and live LUTs only under an L0 data
store (``config.l0_data``).  Anything else returns ``None`` and the
engine falls back to its object loop; the affine cases are exactly the
ones where ``lut_l1_trips`` stays zero, so the stats reduce to plan
constants.  Numerics: times are half-integer multiples well below
2**52, so float64 evaluation is exact, and the ``NEG`` sentinel is a
power of two that float64 represents exactly.
"""

from __future__ import annotations

import numpy as np

from ...perf.phases import PHASES, perf_counter

#: "Minus infinity" of the max-plus algebra.  Exact in float64, and far
#: below any reachable cycle count even after per-instruction +1 steps.
NEG = -(1 << 62)

_UNBUILT = object()


class AffinePlan:
    """One compiled per-record timing function (fixed trip count)."""

    __slots__ = (
        "matrix", "n_meta", "skipped", "slots", "pc_extra", "width",
    )

    def __init__(self, matrix, n_meta, skipped, slots, pc_extra):
        self.matrix = matrix          # rows: pc_after_meta, pc_final, pushes
        self.n_meta = n_meta
        self.skipped = skipped
        self.slots = slots            # output slot per push row, in order
        self.pc_extra = pc_extra      # loop-control addend (plan constant)
        self.width = matrix.shape[1]


def _as_count(value):
    """Exact scalar out of the float64 evaluation (int when integral)."""
    value = float(value)
    integral = int(value)
    return integral if integral == value else value


def build_plan(engine, trips):
    """Compile the record loop for one trip count; None = unsupported."""
    meta, skipped, live_luts, outs = engine._live_meta(trips)
    l0_data = engine.config.l0_data
    for m in meta:
        kind = m[1]
        if kind == 2 or (kind == 1 and not l0_data):
            return None  # live L1 round trips: not an affine function

    kernel = engine.kernel
    width = 2 + kernel.record_in
    l0_latency = engine.params.l0_data_latency
    maximum = np.maximum

    # ready_at rows: never-executed producers read as ``start`` (basis
    # index 0), matching the reference's ``ready_at.get(p, start)``.
    ready = np.full((len(kernel.body), width), NEG, dtype=np.int64)
    ready[:, 0] = 0
    pc = np.full(width, NEG, dtype=np.int64)
    pc[1] = 0  # pc starts at pc_after_chunks

    for iid, kind, producers, word_deps, latency, _base, _len in meta:
        # The object loop's literal 0 floor on operands_ready never
        # binds: pc >= start >= 1 (setup is at least one cycle).
        issue = pc
        for p in producers:
            issue = maximum(issue, ready[p])
        if word_deps:
            deps = np.full(width, NEG, dtype=np.int64)
            for w in word_deps:
                deps[2 + w] = 0
            issue = maximum(issue, deps)
        ready[iid] = issue + (latency if kind == 0 else l0_latency)
        pc = issue + 1

    rows = [pc]  # row 0: pc after the instruction loop
    for slot, producer in outs:
        issue = pc if producer < 0 else maximum(pc, ready[producer])
        pc = issue + 1
        rows.append(issue)  # store issue; +edge happens at evaluation
    rows.insert(1, pc)  # row 1: pc after the stores

    loop = kernel.loop
    static = loop.static_trips or 1
    if loop.variable:
        pc_extra = trips
    elif static > 1:
        pc_extra = static
    else:
        pc_extra = 0
    return AffinePlan(
        matrix=np.stack(rows).astype(np.float64),
        n_meta=len(meta),
        skipped=skipped,
        slots=[slot for slot, _producer in outs],
        pc_extra=pc_extra,
    )


def run_record(engine, node, start, record, record_index):
    """Array-core replacement for one ``_run_record`` call.

    Returns ``(next_free_cycle, None)`` exactly like the object loop,
    or ``None`` when this record's trip count has no affine plan (the
    caller then falls back).  The chunk-load phase below is the same
    stateful sequence of memory calls the object loop makes, credited
    to the same ``mimd_memory`` phase.
    """
    kernel = engine.kernel
    trips = kernel.trip_count(record)
    plans = engine.__dict__.setdefault("_fastcore_plans", {})
    plan = plans.get(trips, _UNBUILT)
    if plan is _UNBUILT:
        plan = build_plan(engine, trips)
        plans[trips] = plan
    if plan is None:
        return None

    params = engine.params
    memory = engine.memory
    row = node // params.cols
    edge = params.route_to_row_edge(node)

    x = np.zeros(plan.width, dtype=np.float64)
    x[0] = start

    phases = PHASES.enabled
    mem_started = perf_counter() if phases else 0.0
    pc_time = start
    load_stalls = 0
    smc_stream = engine.config.smc_stream
    l1_access = memory.l1_access
    lmw_deliver_fast = memory.lmw_deliver_fast
    for words in engine._chunks:
        request = pc_time + edge
        if smc_stream:
            deliveries = lmw_deliver_fast(
                row, request, len(words), scattered=True
            )
        else:
            base = (1 << 24) + record_index * kernel.record_in
            deliveries = [l1_access(base + w, request) for w in words]
        chunk_ready = pc_time + 1
        for w, ready in zip(words, deliveries):
            back = ready + edge
            x[2 + w] = back
            if back > chunk_ready:
                chunk_ready = back
        load_stalls += chunk_ready - (pc_time + 1)
        pc_time = chunk_ready
    if phases:
        PHASES.add("mimd_memory", perf_counter() - mem_started)
    x[1] = pc_time

    vals = (plan.matrix + x).max(axis=1)
    # Instruction-loop stalls telescope: sum(issue - pc) over the loop
    # is the final pc minus the entry pc minus one step per instruction.
    load_stalls += _as_count(vals[0] - pc_time - plan.n_meta)

    out_base = (1 << 26) + record_index * kernel.record_out
    if plan.slots:
        pushes = [
            (out_base + slot, _as_count(vals[2 + k] + edge))
            for k, slot in enumerate(plan.slots)
        ]
        if phases:
            mem_started = perf_counter()
        memory.smc_store_many(row, pushes)
        if phases:
            PHASES.add("mimd_memory", perf_counter() - mem_started)

    stats = engine.stats
    stats.load_stall_cycles += load_stalls
    stats.instructions_executed += plan.n_meta
    stats.instructions_skipped += plan.skipped
    # lut_l1_trips stays zero by the coverage rule above.
    return _as_count(vals[1]) + plan.pc_extra, None
