"""Optimized engine hot loops vs their reference implementations.

The performance layer rewrote the inner loops of
:class:`~repro.machine.dataflow_engine.DataflowEngine` and
:class:`~repro.machine.mimd_engine.MimdEngine`; the original loops are
kept as executable specifications (``run_reference`` and
``_run_record_reference``).  These tests pin the cycle-count-equivalence
guard: over a random-kernel fuzzer corpus both paths must produce
identical timings, stats and traces — any divergence is a correctness
bug in the optimization, never an acceptable approximation.
"""

import pytest

from repro.isa.random_kernels import RandomKernelConfig, random_kernel
from repro.kernels import spec
from repro.kernels.registry import all_specs
from repro.machine import DataflowEngine, GridProcessor, MachineConfig, \
    MachineParams, MimdEngine, map_window, rebase_window
from repro.machine.dataflow_engine import STORE as STORE_KIND
from repro.machine.dataflow_engine import DeadlockError
from repro.machine.placement import max_unroll, place_iterations, \
    place_iterations_reference
from repro.machine.window_cache import MappedWindowCache
from repro.memory import MemorySystem

CONFIGS = [MachineConfig.baseline(), MachineConfig.S(),
           MachineConfig.S_O(), MachineConfig.S_O_D()]


def corpus_case(seed):
    """One deterministic fuzzer point (kernel, records, config, window)."""
    cfg = RandomKernelConfig(
        size=10 + seed % 30,
        record_in=2 + seed % 5,
        record_out=1 + seed % 3,
        integer=seed % 2 == 0,
        n_constants=seed % 4,
        table_size=16 if seed % 3 == 0 else 0,
        space_size=32 if seed % 5 == 0 else 0,
        variable_loop_trips=4 if seed % 7 == 0 else 0,
    )
    kernel = random_kernel(seed, cfg)
    config = CONFIGS[seed % 4]
    iterations = min(8, 1 + seed % 8)
    return kernel, config, iterations


def dataflow_pair(kernel, config, iterations, trace=False):
    """Two identical engines for one corpus point."""
    params = MachineParams()
    engines = []
    for _ in range(2):
        memory = MemorySystem(params.rows, params.memory_timings())
        memory.configure_smc(config.smc_stream)
        window = map_window(kernel, config, params, iterations=iterations)
        engines.append(DataflowEngine(window, memory, seed=1, trace=trace))
    return engines


class TestDataflowEquivalence:
    @pytest.mark.parametrize("seed", range(16))
    def test_fuzz_corpus_identical_timing_and_stats(self, seed):
        kernel, config, iterations = corpus_case(seed)
        fast, reference = dataflow_pair(kernel, config, iterations)
        t_fast = fast.run()
        t_ref = reference.run_reference()
        assert t_fast == t_ref
        assert fast.stats == reference.stats

    def test_traces_identical(self):
        kernel, config, iterations = corpus_case(3)
        fast, reference = dataflow_pair(kernel, config, iterations,
                                        trace=True)
        fast.run()
        reference.run_reference()
        assert fast.trace == reference.trace

    def test_paper_kernel_identical(self):
        params = MachineParams()
        for name, config in [("convert", MachineConfig.S_O()),
                             ("md5", MachineConfig.baseline())]:
            kernel = spec(name).kernel()
            fast, reference = dataflow_pair(kernel, config, 4)
            assert fast.run() == reference.run_reference()

    def test_deadlock_raised_by_both_paths(self):
        kernel, config, iterations = corpus_case(1)
        fast, reference = dataflow_pair(kernel, config, iterations)
        fast.window.instances[-1].operands += 1
        reference.window.instances[-1].operands += 1
        # Out-of-band instance surgery invalidates the cached SoA;
        # rebase_window is the only mutation the cache is transparent
        # to (LOAD/STORE addresses are read from instances at issue).
        for engine in (fast, reference):
            if hasattr(engine.window, "_fastcore_soa"):
                del engine.window._fastcore_soa
        with pytest.raises(DeadlockError):
            fast.run()
        with pytest.raises(DeadlockError):
            reference.run_reference()
        # The guard syncs stats before raising, so both paths agree on
        # how far execution got.
        assert fast.stats == reference.stats


class TestPlacementMemoEquivalence:
    """Memoized ``place_iterations`` vs its un-memoized specification."""

    @pytest.mark.parametrize("seed", range(16))
    def test_fuzz_corpus_identical_placement(self, seed):
        kernel, _config, iterations = corpus_case(seed)
        params = MachineParams()
        memoized = place_iterations(kernel, params, iterations)
        reference = place_iterations_reference(kernel, params, iterations)
        assert memoized == reference

    @pytest.mark.parametrize("name", [s.name for s in all_specs()])
    def test_paper_kernels_at_full_unroll(self, name):
        """Full S-morph unroll wraps the array many times — exactly the
        regime where region signatures recur and replays kick in."""
        kernel = spec(name).kernel()
        params = MachineParams()
        U = max_unroll(kernel, params)
        memoized = place_iterations(kernel, params, U)
        reference = place_iterations_reference(kernel, params, U)
        assert memoized == reference
        assert memoized.max_slot_usage() <= params.slots_per_node

    def test_overflow_raised_by_both_paths(self):
        kernel = spec("md5").kernel()
        params = MachineParams()
        too_many = params.nodes * params.slots_per_node
        with pytest.raises(ValueError):
            place_iterations(kernel, params, too_many)
        with pytest.raises(ValueError):
            place_iterations_reference(kernel, params, too_many)


class TestRebasedWindowEquivalence:
    """``rebase_window`` on a warm window vs a fresh offset map."""

    @pytest.mark.parametrize("seed", [0, 3, 5, 8, 12, 15])
    def test_rebase_matches_fresh_map(self, seed):
        kernel, config, iterations = corpus_case(seed)
        params = MachineParams()
        rebased = map_window(kernel, config, params, iterations=iterations)
        rebase_window(rebased, iterations)
        fresh = map_window(kernel, config, params, iterations=iterations,
                           record_offset=iterations)
        assert rebased.record_base == fresh.record_base
        assert rebased.out_base == fresh.out_base
        assert rebased.record_offset == fresh.record_offset
        assert rebased.instances == fresh.instances
        assert rebased.const_reads == fresh.const_reads
        assert rebased.placement == fresh.placement

    @pytest.mark.parametrize("seed", [2, 6, 9, 13])
    def test_warm_window_timing_matches_reference(self, seed):
        """The engine fast path on a rebased window must reproduce the
        reference path on an independently mapped warm window."""
        kernel, config, iterations = corpus_case(seed)
        params = MachineParams()

        def engine(window, trace):
            memory = MemorySystem(params.rows, params.memory_timings())
            memory.configure_smc(config.smc_stream)
            return DataflowEngine(window, memory, seed=2, trace=trace)

        rebased = map_window(kernel, config, params, iterations=iterations)
        rebase_window(rebased, iterations)
        fresh = map_window(kernel, config, params, iterations=iterations,
                           record_offset=iterations)
        fast = engine(rebased, trace=True)
        reference = engine(fresh, trace=True)
        assert fast.run() == reference.run_reference()
        assert fast.stats == reference.stats
        assert fast.trace == reference.trace

    def test_processor_cache_hit_is_bit_identical(self):
        """A GridProcessor replaying a mapped window from the in-process
        cache (hit + rebase) must match a cold mapping run."""
        s = spec("fft")
        kernel, records = s.kernel(), s.workload(16, 3)
        config = MachineConfig.S_O()
        cold = GridProcessor(window_cache=MappedWindowCache()).run(
            kernel, records, config
        )
        warm_proc = GridProcessor(window_cache=MappedWindowCache())
        first = warm_proc.run(kernel, records, config)
        second = warm_proc.run(kernel, records, config)  # cache hit
        assert warm_proc.window_cache.hits > 0
        assert first == cold
        assert second == cold


def mimd_engine(name, config, functional=False):
    params = MachineParams()
    memory = MemorySystem(params.rows, params.memory_timings())
    memory.configure_smc(True)
    return MimdEngine(spec(name).kernel(), config, params, memory,
                      functional=functional)


MIMD_POINTS = [("fft", "M"), ("md5", "M"), ("blowfish", "M-D"),
               ("rijndael", "M"), ("vertex-skinning", "M-D"),
               ("anisotropic-filter", "M-D")]


class TestMimdEquivalence:
    @pytest.mark.parametrize("name,cfg", MIMD_POINTS)
    def test_fast_path_matches_reference(self, name, cfg):
        config = MachineConfig.M() if cfg == "M" else MachineConfig.M_D()
        records = spec(name).workload(24, 5)
        fast = mimd_engine(name, config)
        reference = mimd_engine(name, config)
        reference._run_record = reference._run_record_reference
        r_fast = fast.run(records)
        r_ref = reference.run(records)
        assert r_fast == r_ref
        assert fast.stats == reference.stats

    def test_functional_mode_uses_reference_loop(self):
        """Functional runs still compute outputs (reference loop)."""
        s = spec("blowfish")
        records = s.workload(4, 5)
        engine = mimd_engine("blowfish", MachineConfig.M_D(),
                             functional=True)
        result = engine.run(records)
        for record, out in zip(records, result.outputs):
            assert out == s.reference(record)


def _mimd_capable_points():
    """Every (kernel, MIMD config) pair that fits the machine."""
    processor = GridProcessor()
    points = []
    for s in all_specs():
        kernel = s.kernel()
        for config in (MachineConfig.M(), MachineConfig.M_D()):
            if processor.supports(kernel, config):
                points.append((s.name, config.name))
    return points


class TestMimdAllKernelsEquivalence:
    """The flattened record loop, swept over every capable benchmark."""

    @pytest.mark.parametrize("name,cfg", _mimd_capable_points())
    def test_batch_loop_matches_reference(self, name, cfg):
        config = MachineConfig.M() if cfg == "M" else MachineConfig.M_D()
        records = spec(name).workload(12, 11)
        fast = mimd_engine(name, config)
        reference = mimd_engine(name, config)
        reference._run_record = reference._run_record_reference
        assert fast.run(records) == reference.run(records)
        assert fast.stats == reference.stats


class TestStoreDrainCeiling:
    @pytest.mark.parametrize("done,expected", [(5.5, 6), (5.0, 5),
                                               (7.25, 8)])
    def test_fractional_store_drain_rounds_up(self, done, expected):
        """A store completing at a fractional cycle occupies the next
        whole cycle — the ceiling, not a truncation (the STORE path once
        used the ``int(-(-done // 1))`` idiom; it now uses math.ceil)."""

        class FractionalMemory:
            """Stub memory whose store buffer drains mid-cycle."""

            def __init__(self, done_at):
                self.done_at = done_at

            def smc_store(self, row, address, cycle):
                return self.done_at

        params = MachineParams()
        kernel = spec("convert").kernel()
        config = MachineConfig.S_O()
        window = map_window(kernel, config, params, iterations=1)
        memory = MemorySystem(params.rows, params.memory_timings())
        memory.configure_smc(True)
        engine = DataflowEngine(window, memory, seed=1)
        engine.memory = FractionalMemory(done)
        store = next(i for i in window.instances
                     if i.kind == STORE_KIND)
        completion = engine._issue(store, 0, lambda uid, at: None)
        assert completion == expected
        assert isinstance(completion, int)
