"""The reconfigurable grid processor as a registered backend.

A thin adapter: :class:`~repro.machine.processor.GridProcessor` already
speaks the backend vocabulary (``supports``, ``run`` returning a
:class:`~repro.machine.stats.RunResult`); this class binds it to the
registry so the grid is resolved the same way as every comparator.  Its
``fingerprint_part`` is the fingerprint module's default — addresses
computed before the backend layer existed (and by code that never names
a backend) are grid addresses.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..isa.kernel import Kernel
from ..machine.config import MachineConfig
from ..machine.params import MachineParams
from ..machine.processor import GridProcessor
from ..machine.stats import RunResult
from ..perf.fingerprint import DEFAULT_BACKEND_PART
from .base import Backend


class GridBackend(Backend):
    """TRIPS-style grid processor with the universal DLP mechanisms."""

    name = "grid"
    uses_grid_params = True

    def supports(
        self,
        kernel: Kernel,
        config: MachineConfig,
        params: Optional[MachineParams] = None,
    ) -> bool:
        """Whether the kernel fits the configuration's storage structures."""
        return GridProcessor(params).supports(kernel, config)

    def fingerprint_part(self) -> str:
        """The default backend part: MachineParams cover every grid knob."""
        return DEFAULT_BACKEND_PART

    def run(
        self,
        kernel: Kernel,
        records: Sequence[Sequence],
        config: MachineConfig,
        params: Optional[MachineParams] = None,
        functional: bool = False,
    ) -> RunResult:
        """Simulate a steady-state run on the grid (see GridProcessor.run).

        Constructing the processor per run is cheap: mapped windows are
        memoized in the process-wide
        :data:`~repro.machine.window_cache.SHARED_WINDOW_CACHE`, so
        repeated runs reuse placement work exactly as a long-lived
        processor instance would.
        """
        return GridProcessor(params).run(kernel, records, config, functional)
