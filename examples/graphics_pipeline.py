#!/usr/bin/env python3
"""Real-time graphics scenario: a shader pipeline on one morphing substrate.

Runs a vertex stage, a skinning stage and a fragment stage over a scene,
letting the flexible architecture pick each stage's machine morph — the
paper's point that one homogeneous array can replace specialized vertex
and fragment engines ("the partitioning of ALUs can be dynamically
determined based on scene attributes").

Run:  python examples/graphics_pipeline.py
"""

from repro import FlexibleArchitecture
from repro.analysis import control_profile, trip_histogram
from repro.kernels import spec


def run_stage(arch, name, records):
    s = spec(name)
    run = arch.run(s.kernel(), s.workload(records))
    candidates = ", ".join(
        f"{cname}={result.cycles}"
        for cname, result in sorted(run.candidates.items())
    )
    print(f"{name:20s} -> {run.chosen.name:6s} "
          f"({run.result.cycles} cycles, "
          f"{run.result.ops_per_cycle:.2f} ops/cycle)")
    print(f"{'':20s}    candidates: {candidates}")
    return run


def main():
    arch = FlexibleArchitecture(policy="tuned")
    print("Rendering one frame: 512 vertices -> 512 skinned vertices -> "
          "512 fragments\n")

    vertex = run_stage(arch, "vertex-simple", 512)
    skinning = run_stage(arch, "vertex-skinning", 512)
    fragment = run_stage(arch, "fragment-simple", 512)

    # Why skinning morphs differently: data-dependent bone counts.
    s = spec("vertex-skinning")
    records = s.workload(512)
    profile = control_profile(s.kernel(), records)
    hist = trip_histogram(s.kernel(), records)
    print(f"\nvertex-skinning control behaviour: {profile.control.value}")
    print(f"  bone-count distribution: {hist}")
    print(f"  SIMD predication would waste "
          f"{100 * profile.nullification_waste:.0f}% of issue slots;")
    print("  local program counters branch past the dead bones instead.")

    total = (vertex.result.cycles + skinning.result.cycles
             + fragment.result.cycles)
    print(f"\nframe total: {total} cycles across three morphs of ONE array")
    print("(a fixed SIMD part would lose the skinning stage; a fixed MIMD")
    print("part would lose the streaming stages — Figure 5's argument).")

    # ---- Section 4.3's other trick: run the stages *concurrently* by
    # partitioning the array, sized by scene attributes. -----------------
    from repro.pipeline import PipelinedArray, Stage

    print("\n--- partitioned pipeline (all stages resident at once) ---")
    array = PipelinedArray()
    stages = [
        Stage(spec("vertex-simple").kernel()),
        Stage(spec("fragment-simple").kernel(), amplification=4.0),
    ]
    workloads = [spec("vertex-simple").workload(128),
                 spec("fragment-simple").workload(128)]
    equal = array.run(stages, workloads,
                      partition=PipelinedArray.equal_partition(stages, 64))
    balanced = array.run(stages, workloads)
    print(f"equal split    {equal.partition}: "
          f"{equal.cycles_per_input:6.1f} cycles/triangle "
          f"(bottleneck: {equal.bottleneck})")
    print(f"scene-balanced {balanced.partition}: "
          f"{balanced.cycles_per_input:6.1f} cycles/triangle "
          f"(bottleneck: {balanced.bottleneck})")
    print("Homogeneous ALUs mean the vertex/fragment split is a runtime")
    print("decision — the paper's answer to fixed-function GPU pipelines.")


if __name__ == "__main__":
    main()
