"""Mechanism universality: the same levers move a superscalar core."""

import pytest

from repro.kernels import spec
from repro.superscalar import SuperscalarConfig, SuperscalarCore, SuperscalarParams


@pytest.fixture(scope="module")
def core():
    return SuperscalarCore()


def run(core, name, config, records=256):
    s = spec(name)
    return core.run(s.kernel(), s.workload(records), config)


class TestBasics:
    def test_empty_stream_rejected(self, core):
        with pytest.raises(ValueError):
            core.run(spec("fft").kernel(), [], SuperscalarConfig.baseline())

    def test_baseline_ipc_is_sane(self, core):
        result = run(core, "convert", SuperscalarConfig.baseline())
        # A 4-wide core sustains less than 4 useful ops/cycle.
        assert 0.1 < result.ops_per_cycle < 4.0

    def test_variable_loop_useful_accounting(self, core):
        s = spec("vertex-skinning")
        records = s.workload(64)
        result = core.run(s.kernel(), records, SuperscalarConfig.baseline())
        assert result.useful_ops < 64 * s.kernel().useful_ops()


class TestMechanismDirections:
    """Each mechanism helps the kernels Table 3 says it should."""

    def test_smc_channels_help_streaming_kernels(self, core):
        base = run(core, "fft", SuperscalarConfig.baseline())
        smc = run(core, "fft", SuperscalarConfig(name="x", smc_channels=True))
        assert smc.cycles < base.cycles

    def test_operand_reuse_helps_constant_heavy_kernels(self):
        cfg_with = SuperscalarConfig(name="x", smc_channels=True,
                                     operand_reuse=True)
        cfg_without = SuperscalarConfig(name="y", smc_channels=True)
        # Register ports scarce, ROB deep enough that latency is not the
        # binding resource: the constants' port pressure is now visible.
        tight = SuperscalarCore(SuperscalarParams(
            regfile_read_ports=2, rob_entries=512, issue_width=8,
            fetch_width=8,
        ))
        with_reuse = tight.run(spec("vertex-simple").kernel(),
                               spec("vertex-simple").workload(256), cfg_with)
        without = tight.run(spec("vertex-simple").kernel(),
                            spec("vertex-simple").workload(256), cfg_without)
        assert with_reuse.cycles < without.cycles

    def test_l0_table_helps_lookup_kernels(self):
        # An 8-wide core: rijndael's 160 lookups/record saturate the two
        # L1 ports before the issue width does.
        wide = SuperscalarCore(SuperscalarParams(issue_width=8,
                                                 fetch_width=8))
        base = wide.run(spec("rijndael").kernel(),
                        spec("rijndael").workload(128),
                        SuperscalarConfig(name="x", smc_channels=True,
                                          operand_reuse=True,
                                          loop_buffer=True))
        l0 = wide.run(spec("rijndael").kernel(),
                      spec("rijndael").workload(128),
                      SuperscalarConfig.with_mechanisms())
        assert l0.cycles < base.cycles

    def test_loop_buffer_helps_fetch_bound_kernels(self, core):
        narrow = SuperscalarCore(SuperscalarParams(fetch_width=2))
        base = narrow.run(spec("convert").kernel(),
                          spec("convert").workload(256),
                          SuperscalarConfig(name="x", smc_channels=True,
                                            operand_reuse=True))
        buffered = narrow.run(spec("convert").kernel(),
                              spec("convert").workload(256),
                              SuperscalarConfig(name="y", smc_channels=True,
                                                operand_reuse=True,
                                                loop_buffer=True))
        assert buffered.cycles <= base.cycles

    def test_mechanisms_never_hurt(self, core):
        """Monotonicity: the full mechanism set is never slower."""
        for name in ("convert", "fft", "blowfish", "rijndael",
                     "vertex-simple", "md5"):
            base = run(core, name, SuperscalarConfig.baseline())
            full = run(core, name, SuperscalarConfig.with_mechanisms())
            assert full.cycles <= base.cycles, name


class TestCrossSubstrateAgreement:
    def test_same_winners_as_the_grid(self):
        """The mechanisms' benefit ordering carries across substrates:
        lookup-heavy kernels gain the most from adding the L0 table."""
        wide = SuperscalarCore(SuperscalarParams(issue_width=8,
                                                 fetch_width=8))
        gains = {}
        for name in ("fft", "rijndael"):
            s = spec(name)
            records = s.workload(128)
            without = wide.run(s.kernel(), records, SuperscalarConfig(
                name="x", smc_channels=True, operand_reuse=True,
                loop_buffer=True))
            with_l0 = wide.run(s.kernel(), records,
                               SuperscalarConfig.with_mechanisms())
            gains[name] = without.cycles / with_l0.cycles
        assert gains["rijndael"] > gains["fft"]
