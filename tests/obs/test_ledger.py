"""Durable run ledger: dispatch rows, sweep coverage, concurrency,
the disabled fast path and scope restoration."""

import json
import os
import sqlite3
import threading

import pytest

from repro.backends import dispatch, get
from repro.kernels import spec
from repro.machine import MachineConfig, MachineParams
from repro.obs.ledger import (
    DEFAULT_LEDGER,
    LEDGER,
    LEDGER_ENV,
    LEDGER_SCHEMA,
    ROW_COLUMNS,
    RunLedger,
    current_git_sha,
    ledger_to,
)
from repro.perf import SweepPoint, run_points, simulate_point


def run_convert(records=16):
    s = spec("convert")
    return dispatch(
        get("grid"), s.kernel(), s.workload(records),
        MachineConfig.baseline(), MachineParams(),
    )


def sweep_points(n=2, **kwargs):
    params = MachineParams()
    names = ["convert", "fft", "lu", "transform"]
    return [
        SweepPoint(kernel=names[i % len(names)], config=MachineConfig.S(),
                   params=params, records=8, workload_seed=7, **kwargs)
        for i in range(n)
    ]


class TestDispatchRecords:
    def test_dispatch_appends_one_row(self, tmp_path):
        db = tmp_path / "ledger.sqlite"
        with ledger_to(db) as handle:
            result = run_convert()
            rows = handle.ledger.rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["kernel"] == "convert"
        assert row["config"] == result.config
        assert row["backend"] == "grid"
        assert row["cycles"] == result.cycles
        assert row["records"] == result.records
        assert row["cache"] == "uncached"
        assert row["pid"] == os.getpid()
        assert row["wall_seconds"] >= 0.0

    def test_row_carries_phases_and_metrics(self, tmp_path):
        with ledger_to(tmp_path / "l.sqlite") as handle:
            result = run_convert()
            row = handle.ledger.rows()[0]
        assert isinstance(row["phases"], dict) and row["phases"]
        assert all(v >= 0.0 for v in row["phases"].values())
        # The metrics column is the run's detail snapshot verbatim.
        assert row["metrics"]["l1.accesses"] == result.detail["l1.accesses"]

    def test_row_carries_provenance(self, tmp_path):
        with ledger_to(tmp_path / "l.sqlite") as handle:
            run_convert()
            row = handle.ledger.rows()[0]
        assert row["git_sha"] == current_git_sha()
        assert row["host"]
        assert row["engine_core"] in ("array", "object")
        assert row["sanitizer"] == "off"

    def test_params_column_is_sorted_json(self, tmp_path):
        """Enum-keyed MachineParams tables serialize (keys stringified)."""
        with ledger_to(tmp_path / "l.sqlite") as handle:
            run_convert()
            raw = sqlite3.connect(handle.path).execute(
                "SELECT params FROM runs"
            ).fetchone()[0]
        doc = json.loads(raw)
        assert doc["rows"] == 8
        assert raw == json.dumps(doc, sort_keys=True)


class TestSweepCoverage:
    def test_two_point_sweep_leaves_two_rows(self, tmp_path):
        """The ISSUE acceptance: a 2-point sweep -> >= 2 ledger rows."""
        db = tmp_path / "ledger.sqlite"
        with ledger_to(db) as handle:
            run_points(sweep_points(2), jobs=1)
            assert handle.ledger.count() >= 2
            kernels = {row["kernel"] for row in handle.ledger.rows()}
        assert kernels == {"convert", "fft"}

    def test_cached_point_records_hit_row(self, tmp_path):
        db = tmp_path / "ledger.sqlite"
        cache_dir = tmp_path / "cache"
        point = sweep_points(1, cache_dir=str(cache_dir))[0]
        with ledger_to(db) as handle:
            first = simulate_point(point)
            second = simulate_point(point)
            rows = handle.ledger.rows()
        assert first == second
        verdicts = sorted(row["cache"] for row in rows)
        assert verdicts == ["hit", "miss"]
        assert all(row["fingerprint"] for row in rows)
        hit = next(row for row in rows if row["cache"] == "hit")
        assert hit["wall_seconds"] == 0.0

    def test_sweep_point_carries_ledger_path(self, tmp_path):
        db = str(tmp_path / "worker.sqlite")
        point = sweep_points(1, ledger_path=db)[0]
        # A worker process starts with LEDGER disabled and adopts the
        # point's path; simulate this in-process from the disabled state.
        assert not LEDGER.enabled
        try:
            simulate_point(point)
            assert LEDGER.enabled and LEDGER.path == db
            assert RunLedger(db).count() == 1
        finally:
            LEDGER.disable(mirror_env=False)


class TestDisabledPath:
    def test_disabled_by_default_and_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert not LEDGER.enabled
        run_convert()
        assert not (tmp_path / DEFAULT_LEDGER).exists()

    def test_record_run_returns_none_while_disabled(self):
        result = run_convert()
        assert LEDGER.record_run(
            result, backend="grid", engine_core="array", wall_seconds=0.1
        ) is None


class TestScopeRestoration:
    def test_ledger_to_restores_disabled_state_and_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        with ledger_to(tmp_path / "l.sqlite"):
            assert LEDGER.enabled
            assert os.environ[LEDGER_ENV] == str(tmp_path / "l.sqlite")
        assert not LEDGER.enabled
        assert LEDGER_ENV not in os.environ

    def test_ledger_to_none_pauses_an_active_ledger(self, tmp_path):
        outer = str(tmp_path / "outer.sqlite")
        with ledger_to(outer):
            with ledger_to(None):
                assert not LEDGER.enabled
                run_convert()
            assert LEDGER.enabled and LEDGER.path == outer
            assert LEDGER.ledger.count() == 0

    def test_exception_still_restores(self, tmp_path):
        with pytest.raises(RuntimeError):
            with ledger_to(tmp_path / "l.sqlite"):
                raise RuntimeError("boom")
        assert not LEDGER.enabled

    def test_nested_job_scope_exception_restores_outer(self, tmp_path):
        """A service-style per-job scope dying mid-sweep must hand the
        outer ledger back — handle AND env mirror — or later pool
        workers would record into a dead per-job database."""
        outer = str(tmp_path / "outer.sqlite")
        per_job = str(tmp_path / "job" / "ledger.sqlite")
        with ledger_to(outer):
            with pytest.raises(RuntimeError):
                with ledger_to(per_job):
                    assert os.environ[LEDGER_ENV] == per_job
                    raise RuntimeError("job failed mid-sweep")
            assert LEDGER.enabled and LEDGER.path == outer
            assert os.environ[LEDGER_ENV] == outer
            run_convert()
            assert LEDGER.ledger.count() == 1

    def test_env_already_pointing_at_scope_target(self, tmp_path,
                                                  monkeypatch):
        """Entering a scope whose path equals the pre-set env var must
        restore that env value on exit even though the handle itself
        was disabled before the scope."""
        path = str(tmp_path / "same.sqlite")
        monkeypatch.setenv(LEDGER_ENV, path)
        assert not LEDGER.enabled
        with ledger_to(path):
            assert LEDGER.path == path
        assert not LEDGER.enabled
        assert os.environ[LEDGER_ENV] == path

    def test_unwritable_database_failure_restores_env(self, tmp_path,
                                                      monkeypatch):
        """The database opens lazily, so an unwritable path blows up on
        the first append *inside* the scope; the unwind must not leave
        the env mirror pointing at the never-created database."""
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        bad = tmp_path / "not-a-dir"
        bad.write_text("file, not directory")
        with pytest.raises(OSError):
            with ledger_to(bad / "ledger.sqlite"):
                LEDGER.ledger.append({"run_id": "x", "created_at": 0.0})
        assert not LEDGER.enabled
        assert LEDGER_ENV not in os.environ

    def test_disable_clears_the_stale_path(self, tmp_path):
        LEDGER.configure(str(tmp_path / "l.sqlite"), mirror_env=False)
        assert LEDGER.path is not None
        LEDGER.disable(mirror_env=False)
        assert not LEDGER.enabled
        assert LEDGER.path is None


class TestConcurrentWriters:
    def test_threaded_appends_all_land(self, tmp_path):
        """Many threads share one RunLedger; every insert survives."""
        ledger = RunLedger(str(tmp_path / "c.sqlite"))
        errors = []

        def write(worker):
            try:
                for i in range(20):
                    ledger.append({
                        "run_id": f"w{worker}-{i}", "created_at": float(i),
                        "kernel": "convert", "config": "S", "backend": "grid",
                    })
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert ledger.count() == 160

    def test_separate_connections_interleave(self, tmp_path):
        """Two independent handles (as two processes would hold) append
        to one WAL database without losing rows."""
        path = str(tmp_path / "multi.sqlite")
        a, b = RunLedger(path), RunLedger(path)
        for i in range(25):
            a.append({"run_id": f"a{i}", "created_at": float(i)})
            b.append({"run_id": f"b{i}", "created_at": float(i)})
        assert a.count() == b.count() == 50
        a.close(), b.close()


class TestReadBack:
    def seed(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "r.sqlite"))
        for i, (kernel, backend) in enumerate(
            [("convert", "grid"), ("fft", "grid"), ("convert", "simd")]
        ):
            ledger.append({
                "run_id": f"{i}abc{i}", "created_at": float(i),
                "kernel": kernel, "backend": backend, "config": "S",
                "metrics": json.dumps({"x": i}),
            })
        return ledger

    def test_rows_newest_first_with_filters(self, tmp_path):
        ledger = self.seed(tmp_path)
        assert [r["run_id"] for r in ledger.rows()] == \
            ["2abc2", "1abc1", "0abc0"]
        assert [r["kernel"] for r in ledger.rows(kernel="fft")] == ["fft"]
        assert len(ledger.rows(backend="grid")) == 2
        assert len(ledger.rows(limit=1)) == 1

    def test_json_columns_decode(self, tmp_path):
        row = self.seed(tmp_path).rows(limit=1)[0]
        assert row["metrics"] == {"x": 2}
        assert set(row) == set(ROW_COLUMNS)

    def test_find_by_prefix(self, tmp_path):
        ledger = self.seed(tmp_path)
        assert ledger.find("1abc")["kernel"] == "fft"
        assert ledger.find("zzz") is None
        with pytest.raises(LookupError):
            ledger.find("")  # matches every row

    def test_find_ambiguous_prefix_names_candidates(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "amb.sqlite"))
        for suffix in ("01", "02"):
            ledger.append({
                "run_id": f"feedc0de{suffix}", "created_at": 0.0,
            })
        with pytest.raises(LookupError) as exc_info:
            ledger.find("feedc0de")
        message = str(exc_info.value)
        assert "feedc0de01" in message and "feedc0de02" in message
        assert "more characters" in message

    def test_find_exact_match_beats_longer_siblings(self, tmp_path):
        """A full run id is never 'ambiguous' with ids it prefixes."""
        ledger = RunLedger(str(tmp_path / "exact.sqlite"))
        ledger.append({"run_id": "cafe", "created_at": 0.0,
                       "kernel": "convert"})
        ledger.append({"run_id": "cafe99", "created_at": 1.0,
                       "kernel": "fft"})
        assert ledger.find("cafe")["kernel"] == "convert"
        assert ledger.find("cafe9")["kernel"] == "fft"

    def test_cache_counts_with_and_without_since(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "cc.sqlite"))
        for stamp, verdict in enumerate(
            ["miss", "miss", "hit", "hit", "hit", "uncached"]
        ):
            ledger.append({
                "run_id": f"r{stamp}", "created_at": float(stamp),
                "cache": verdict,
            })
        assert ledger.cache_counts() == {"hit": 3, "miss": 2,
                                         "uncached": 1}
        # `since` keeps only rows stamped in the window (the service
        # uses a job's started_at here)
        assert ledger.cache_counts(since=2.0) == {"hit": 3, "uncached": 1}
        assert ledger.cache_counts(since=99.0) == {}

    def test_schema_version_stamped(self, tmp_path):
        ledger = self.seed(tmp_path)
        value = sqlite3.connect(ledger.path).execute(
            "SELECT value FROM meta WHERE key='schema'"
        ).fetchone()[0]
        assert value == str(LEDGER_SCHEMA)
