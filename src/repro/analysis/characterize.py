"""Kernel characterization — reproduces the paper's Table 2 measurements.

Extracts the computation / memory / control attributes of Section 2 from
the kernel dataflow graphs:

* instruction count (fully-unrolled body, as the paper measures),
* inherent ILP = instructions / dataflow height.  For static-loop
  kernels the paper measures *one loop iteration*, so we compute the ILP
  on the first trip's subgraph (kernels emit trips contiguously); for
  variable-bound kernels the paper "completely unrolled" — the whole
  graph;
* record read/write sizes in 64-bit words,
* irregular memory accesses (LDI ops),
* scalar named constants (register-resident),
* indexed-constant table entries,
* loop bound (static trip count / "Variable" / none).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..isa.instruction import InstResult
from ..isa.kernel import ControlClass, Kernel


@dataclass(frozen=True)
class KernelAttributes:
    """One measured row of Table 2."""

    name: str
    instructions: int
    ilp: float
    record_read: int
    record_write: int
    irregular: int
    constants: int
    indexed_constants: int
    loop_bound: Optional[str]
    control: ControlClass
    #: indexed-constant *accesses* per iteration (LUT ops; the paper's
    #: Table 2 reports table sizes, but access frequency is what drives
    #: the bandwidth arguments, so we measure both)
    lut_accesses: int = 0

    def as_row(self) -> List[str]:
        return [
            self.name,
            str(self.instructions),
            f"{self.ilp:.2f}",
            f"{self.record_read}/{self.record_write}",
            str(self.irregular) if self.irregular else "-",
            str(self.constants) if self.constants else "-",
            str(self.indexed_constants) if self.indexed_constants else "-",
            self.loop_bound or "-",
        ]


def _subgraph_height(kernel: Kernel, count: int) -> int:
    """Dataflow height of the first ``count`` instructions."""
    depth = {}
    height = 0
    for inst in kernel.body[:count]:
        preds = [
            src.producer for src in inst.srcs
            if isinstance(src, InstResult) and src.producer in depth
        ]
        depth[inst.iid] = 1 + max((depth[p] for p in preds), default=0)
        height = max(height, depth[inst.iid])
    return height


def iteration_ilp(kernel: Kernel) -> float:
    """ILP of one loop iteration (the paper's Table 2 convention)."""
    trips = kernel.loop.static_trips
    if trips and trips > 1:
        per_trip = math.ceil(len(kernel.body) / trips)
        height = _subgraph_height(kernel, per_trip)
        return per_trip / height if height else 0.0
    return kernel.inherent_ilp()


def loop_bound_label(kernel: Kernel) -> Optional[str]:
    """Table 2 loop-bounds column value for a kernel (or None)."""
    if kernel.loop.variable:
        return "Variable"
    if kernel.loop.static_trips and kernel.loop.static_trips > 1:
        return str(kernel.loop.static_trips)
    return None


def characterize(kernel: Kernel) -> KernelAttributes:
    """Measure the Table 2 attributes of one kernel."""
    return KernelAttributes(
        name=kernel.name,
        instructions=len(kernel.body),
        ilp=iteration_ilp(kernel),
        record_read=kernel.record_in,
        record_write=kernel.record_out,
        irregular=kernel.count_irregular(),
        constants=len(kernel.scalar_constants()),
        indexed_constants=kernel.indexed_constant_entries(),
        loop_bound=loop_bound_label(kernel),
        control=kernel.control_class(),
        lut_accesses=kernel.count_lut_accesses(),
    )
