"""The paper's headline results, as executable assertions.

These tests encode the *shape* of the evaluation section — who wins,
in what order, by roughly what kind of factor — on the shared
experiment context.  Absolute cycle counts differ from the authors'
simulator (documented in EXPERIMENTS.md); these relationships are the
reproduction target.
"""

import pytest

from repro.harness.experiments import (
    PAPER_PREFERRED,
    ExperimentContext,
    figure5,
    table4,
    table6,
)
from repro.machine import MachineConfig


@pytest.fixture(scope="module")
def fig5(ctx):
    return figure5(ctx)


@pytest.fixture(scope="module")
def t4(ctx):
    return table4(ctx)


class TestConfigurationPreferences:
    """Figure 5's grouping: which configuration each benchmark prefers."""

    @pytest.mark.parametrize("name,expected", sorted(PAPER_PREFERRED.items()))
    def test_preferred_config_matches_paper(self, fig5, name, expected):
        got = fig5.preferred[name]
        if name == "md5":
            # md5 has no lookup tables, so M and M-D are identical
            # machines; the paper groups it under M-D.
            assert got in ("M", "M-D")
            assert fig5.speedups[name]["M"] == pytest.approx(
                fig5.speedups[name]["M-D"]
            )
        else:
            assert got == expected

    def test_every_mechanism_config_beats_baseline_somewhere(self, fig5):
        for config in ("S", "S-O", "S-O-D", "M", "M-D"):
            assert any(
                per.get(config, 0) > 1.0 for per in fig5.speedups.values()
            ), config


class TestMechanismEffects:
    """Section 5.3's per-mechanism observations."""

    def test_scientific_kernels_gain_from_s_alone(self, fig5):
        """fft and lu: SMC + revitalization give a multi-x speedup."""
        for name in ("fft", "lu"):
            assert fig5.speedups[name]["S"] > 1.8

    def test_operand_revitalization_helps_constant_heavy_kernels(self, fig5):
        """S-O >> S exactly for the scalar-constant-bound kernels."""
        for name in ("convert", "vertex-simple", "vertex-reflection",
                     "highpassfilter"):
            assert fig5.speedups[name]["S-O"] > 1.25 * fig5.speedups[name]["S"]

    def test_operand_revitalization_is_noop_without_constants(self, fig5):
        for name in ("fft", "lu"):
            assert fig5.speedups[name]["S-O"] == pytest.approx(
                fig5.speedups[name]["S"], rel=0.02
            )

    def test_l0_store_accelerates_lookup_kernels(self, fig5):
        """Blowfish and rijndael gain >25% from the L0 data store
        (the paper reports 27% and 80%)."""
        for name in ("blowfish", "rijndael"):
            assert (fig5.speedups[name]["S-O-D"]
                    > 1.25 * fig5.speedups[name]["S-O"])

    def test_l0_store_is_noop_without_tables(self, fig5):
        for name in ("convert", "fft", "fragment-simple"):
            assert fig5.speedups[name]["S-O-D"] == pytest.approx(
                fig5.speedups[name]["S-O"], rel=0.02
            )

    def test_mimd_degrades_streaming_kernels(self, fig5):
        """'The baseline MIMD configuration degrades performance somewhat
        relative to S-O-D for all applications except vertex-skinning'."""
        for name in ("fft", "lu", "convert", "highpassfilter",
                     "fragment-simple"):
            assert fig5.speedups[name]["M"] < fig5.speedups[name]["S-O-D"]

    def test_mimd_wins_for_data_dependent_branching(self, fig5):
        """vertex-skinning: local PCs skip dead bones."""
        assert (fig5.speedups["vertex-skinning"]["M-D"]
                > fig5.speedups["vertex-skinning"]["S-O-D"])

    def test_crypto_prefers_mimd_with_tables(self, fig5):
        for name in ("blowfish", "rijndael", "md5"):
            assert (fig5.speedups[name]["M-D"]
                    >= fig5.speedups[name]["S-O-D"])


class TestFlexibleAggregate:
    """Figure 5's Flexible bar: 5%-55% over the fixed machines."""

    def test_flexible_beats_every_fixed_machine(self, fig5):
        for name in ("S", "S-O", "S-O-D", "M", "M-D"):
            assert fig5.flexible_vs(name) > 1.0, name

    def test_gain_over_fixed_s_is_large(self, fig5):
        """Paper: +55%.  Accept 30%-100%."""
        assert 1.30 < fig5.flexible_vs("S") < 2.0

    def test_gain_over_fixed_so_is_moderate(self, fig5):
        """Paper: +20%.  Accept 8%-50%."""
        assert 1.08 < fig5.flexible_vs("S-O") < 1.5

    def test_fixed_machine_ordering_matches_paper(self, fig5):
        """Paper's quoted fixed machines order: S < S-O < M-D < Flexible."""
        assert (fig5.fixed_hmean["S"] < fig5.fixed_hmean["S-O"]
                < fig5.fixed_hmean["M-D"] < fig5.flexible_hmean)


class TestBaselineLevels:
    """Table 4: the ILP baseline sustains DSP >> other domains."""

    def test_dsp_baseline_outruns_other_domains(self, t4):
        by_name = t4.by_name()
        dsp = [by_name[n] for n in ("convert", "dct", "highpassfilter")]
        others = [by_name[n] for n in ("lu", "md5", "blowfish", "rijndael")]
        assert min(dsp) > max(others)

    def test_all_baselines_within_3x_of_paper(self, t4):
        for name, measured, paper in t4.rows:
            assert measured / paper < 3.5, (name, measured, paper)
            assert measured / paper > 0.2, (name, measured, paper)


class TestTable6Shape:
    def test_crypto_beats_cryptomaniac_by_an_order(self, ctx):
        """Paper: TRIPS processes blocks ~10x faster than CryptoManiac."""
        t6 = table6(ctx)
        rows = {r.row.benchmark: r for r in t6.results}
        assert rows["blowfish"].vs_specialized > 5
        assert rows["rijndael"].vs_specialized > 5

    def test_tarantula_beats_trips_on_scientific(self, ctx):
        t6 = table6(ctx)
        rows = {r.row.benchmark: r for r in t6.results}
        assert rows["fft"].vs_specialized < 1.0
        assert rows["lu"].vs_specialized < 1.0

    def test_quadrofx_beats_trips_on_fragments(self, ctx):
        t6 = table6(ctx)
        rows = {r.row.benchmark: r for r in t6.results}
        assert rows["fragment-simple"].vs_specialized < 0.5

    def test_trips_beats_p4_vertex_shading(self, ctx):
        t6 = table6(ctx)
        rows = {r.row.benchmark: r for r in t6.results}
        assert rows["vertex-simple"].vs_specialized > 1.0
