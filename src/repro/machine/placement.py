"""Static placement of kernel instructions onto the ALU array.

The TRIPS execution model is statically placed, dynamically issued
(SPDI): a scheduler assigns every instruction of a mapped block to a node
before execution.  This module implements a deterministic placement
heuristic in the spirit of the paper's software schedulers:

* each unrolled iteration gets a *region* — a small contiguous window of
  nodes sized by the kernel's inherent ILP, so producer→consumer hops stay
  short;
* regions stripe across the array (row-major), so iterations spread over
  all rows and each row's SMC bank/streaming channel feeds the iterations
  living in that row;
* within a region, instructions are placed onto the least-loaded node, in
  topological order, subject to per-node reservation-station capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..isa.kernel import Kernel
from ..obs.metrics import METRICS
from ..perf.phases import PHASES, perf_counter
from .fastcore import active_core
from .params import MachineParams

try:
    from .fastcore import map_core as _map_core
except ImportError:  # numpy unavailable: the object placement stands alone
    _map_core = None


@dataclass
class Placement:
    """Placement of ``iterations`` copies of a kernel onto the array.

    ``node_of[(iteration, iid)]`` is the node index (row-major) of each
    instruction instance; ``home_row[iteration]`` is the row whose SMC
    bank and streaming channel serve that iteration's regular memory
    traffic.
    """

    iterations: int
    node_of: Dict[Tuple[int, int], int]
    home_row: List[int]
    slots_used: Dict[int, int]
    #: per-iteration node assignment in kernel-body order — the same
    #: information as ``node_of``, laid out for the template-cloning
    #: window expansion (replayed iterations share one list object).
    #: Derived, so excluded from equality.
    node_rows: List[List[int]] = field(default_factory=list, compare=False)

    def max_slot_usage(self) -> int:
        return max(self.slots_used.values(), default=0)


def region_width(kernel: Kernel, params: MachineParams) -> int:
    """Nodes per iteration region.

    Wide enough for the kernel's inherent ILP *and* for its reservation
    -station footprint (so consecutive iterations tile the array instead
    of cascading spills into each other's regions).
    """
    ilp_width = int(round(kernel.inherent_ilp())) or 1
    capacity_width = -(-len(kernel.body) // params.slots_per_node)  # ceil
    width = max(1, ilp_width, capacity_width)
    return min(params.nodes, width)


def _place_one_iteration(
    kernel: Kernel,
    params: MachineParams,
    u: int,
    width: int,
    slots_used: Dict[int, int],
    node_of: Dict[Tuple[int, int], int],
) -> Tuple[List[int], List[int]]:
    """Greedily place iteration ``u``; mutate ``slots_used``/``node_of``.

    Chain-affine greedy placement: an instruction prefers the node of
    one of its producers (keeping dependence chains local, so results
    forward without network hops — what the TRIPS schedulers optimize),
    spilling to the least-loaded node of the iteration's region when the
    producer nodes are saturated.  "Saturated" uses a per-node running
    chain budget so a single node does not swallow a whole wide graph.

    Returns ``(region, assignment)``: the final (possibly widened) region
    — exactly the set of nodes whose ``slots_used`` the decisions read —
    and the chosen node per instruction in body order, which together
    form the memoization record of :func:`place_iterations`.
    """
    nodes = params.nodes
    capacity = params.slots_per_node
    start = (u * width) % nodes
    region = [(start + k) % nodes for k in range(width)]
    # Per-iteration load balance target: no node should hold much more
    # than its fair share of this iteration's instructions.
    fair_share = max(2, 2 * -(-len(kernel.body) // max(1, width)))
    iter_load: Dict[int, int] = {}
    assignment: List[int] = []

    for inst in kernel.body:  # body is topologically ordered
        chosen = -1
        best_load = None
        for p in inst.dataflow_sources():
            candidate = node_of[(u, p)]
            load = iter_load.get(candidate, 0)
            if slots_used[candidate] < capacity and load < fair_share:
                if best_load is None or load < best_load:
                    chosen = candidate
                    best_load = load
        if chosen < 0:
            # Least-loaded non-full node in the region; widen the
            # region (without re-adding nodes) when all are full.
            while True:
                candidates = [
                    n for n in region if slots_used[n] < capacity
                ]
                if candidates:
                    chosen = min(
                        candidates,
                        key=lambda n: (iter_load.get(n, 0), slots_used[n]),
                    )
                    break
                if len(region) >= nodes:
                    raise ValueError(
                        f"placement overflow: {kernel.name} x "
                        f"(iteration {u}) exceeds reservation capacity"
                    )
                nxt = (region[-1] + 1) % nodes
                while nxt in region:
                    nxt = (nxt + 1) % nodes
                region.append(nxt)
        node_of[(u, inst.iid)] = chosen
        slots_used[chosen] += 1
        iter_load[chosen] = iter_load.get(chosen, 0) + 1
        assignment.append(chosen)
    return region, assignment


def place_iterations(
    kernel: Kernel, params: MachineParams, iterations: int
) -> Placement:
    """Place ``iterations`` unrolled copies of ``kernel`` onto the grid.

    Raises ``ValueError`` when the request exceeds total reservation-station
    capacity; callers pick ``iterations`` with :func:`max_unroll`.

    Placement of one iteration is a deterministic function of the kernel
    and the slot state of the nodes its greedy pass reads (the final
    region of :func:`_place_one_iteration`), so repeated iterations are
    memoized by *region signature* — ``(start node, slots_used over that
    region at entry)``.  Signatures recur every time the unroll wraps the
    array, turning the greedy pass from O(iterations) to O(distinct
    signatures).  :func:`place_iterations_reference` is the un-memoized
    executable specification; the equivalence suite pins the two to
    identical placements.

    Under the ``array`` engine core the greedy pass runs the
    array-scored variant in :mod:`repro.machine.fastcore.map_core`
    (pinned to this one by the fastcore equivalence suite).  Wall time
    is credited to the ``placement`` phase either way, so the mapping
    phase breakdown separates placement from window expansion.
    """
    if not PHASES.enabled:
        return _place_iterations_impl(kernel, params, iterations)
    started = perf_counter()
    try:
        return _place_iterations_impl(kernel, params, iterations)
    finally:
        PHASES.add("placement", perf_counter() - started)


def _place_iterations_impl(
    kernel: Kernel, params: MachineParams, iterations: int
) -> Placement:
    if _map_core is not None and active_core() == "array":
        return _map_core.place_iterations_array(kernel, params, iterations)
    width = region_width(kernel, params)
    nodes = params.nodes
    capacity = params.slots_per_node
    total_needed = iterations * len(kernel.body)
    if total_needed > nodes * capacity:
        raise ValueError(
            f"cannot place {iterations} x {len(kernel.body)} instructions: "
            f"capacity is {nodes * capacity} slots"
        )

    slots_used: Dict[int, int] = {n: 0 for n in range(nodes)}
    node_of: Dict[Tuple[int, int], int] = {}
    home_row: List[int] = []
    node_rows: List[List[int]] = []
    body = kernel.body
    #: start node -> [(entry slot signature, region, assignment)]
    memo: Dict[int, List[Tuple[Tuple[int, ...], List[int], List[int]]]] = {}

    for u in range(iterations):
        start = (u * width) % nodes
        home_row.append((start // params.cols) % params.rows)
        replay = None
        for signature, region, assignment in memo.get(start, ()):
            if all(slots_used[n] == s for n, s in zip(region, signature)):
                replay = assignment
                break
        if replay is not None:
            for inst, node in zip(body, replay):
                node_of[(u, inst.iid)] = node
                slots_used[node] += 1
            node_rows.append(replay)
            continue
        entry_slots = dict(slots_used)
        try:
            region, assignment = _place_one_iteration(
                kernel, params, u, width, slots_used, node_of
            )
        except ValueError:
            raise ValueError(
                f"placement overflow: {kernel.name} x "
                f"{iterations} exceeds reservation capacity"
            ) from None
        memo.setdefault(start, []).append(
            (tuple(entry_slots[n] for n in region), region, assignment)
        )
        node_rows.append(assignment)
    if METRICS.enabled:
        METRICS.inc("placement.windows_placed")
        METRICS.inc("placement.instances_placed", iterations)
        METRICS.inc("placement.memo_replays",
                    iterations - sum(len(v) for v in memo.values()))
    return Placement(
        iterations=iterations,
        node_of=node_of,
        home_row=home_row,
        slots_used=slots_used,
        node_rows=node_rows,
    )


def place_iterations_reference(
    kernel: Kernel, params: MachineParams, iterations: int
) -> Placement:
    """Un-memoized placement loop: the executable specification that
    :func:`place_iterations` must reproduce bit-for-bit."""
    width = region_width(kernel, params)
    nodes = params.nodes
    capacity = params.slots_per_node
    total_needed = iterations * len(kernel.body)
    if total_needed > nodes * capacity:
        raise ValueError(
            f"cannot place {iterations} x {len(kernel.body)} instructions: "
            f"capacity is {nodes * capacity} slots"
        )

    slots_used: Dict[int, int] = {n: 0 for n in range(nodes)}
    node_of: Dict[Tuple[int, int], int] = {}
    home_row: List[int] = []
    node_rows: List[List[int]] = []

    for u in range(iterations):
        start = (u * width) % nodes
        home_row.append((start // params.cols) % params.rows)
        try:
            _, assignment = _place_one_iteration(
                kernel, params, u, width, slots_used, node_of
            )
        except ValueError:
            raise ValueError(
                f"placement overflow: {kernel.name} x "
                f"{iterations} exceeds reservation capacity"
            ) from None
        node_rows.append(assignment)
    return Placement(
        iterations=iterations,
        node_of=node_of,
        home_row=home_row,
        slots_used=slots_used,
        node_rows=node_rows,
    )


def max_unroll(kernel: Kernel, params: MachineParams, overhead_per_iter: int = 0) -> int:
    """Largest iteration count mappable at once in the SIMD (S-*) modes.

    The paper unrolls "as much as possible, as determined by the number of
    the reservation stations, so as to reduce the number of
    revitalizations", subject to the S-morph unroll limit.
    """
    per_iter = len(kernel.body) + overhead_per_iter
    if per_iter == 0:
        return 1
    fit = params.mapping_capacity // per_iter
    return max(1, min(fit, params.simd_max_unroll))
