"""Set-associative cache model (the hardware-managed L1 path).

The paper's second memory-system mechanism is a conventional cached
memory subsystem for *irregular* accesses (texture lookups, and — on the
baseline ILP machine — all accesses).  This module provides a banked,
set-associative, LRU cache with real tag state, so hit/miss behaviour is
measured rather than assumed, plus port arbitration for bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.trace import MEM, TRACE
from .mainmem import WORD_BYTES, MainMemory
from .ports import PortQueue

try:
    import numpy as np
except ImportError:  # pragma: no cover - the container ships numpy
    np = None


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """One cache bank: set-associative with true-LRU replacement.

    Addresses are word addresses; ``line_words`` words form a line.  The
    cache is write-allocate / write-back, which is what the misses vs.
    writebacks statistics assume.
    """

    def __init__(
        self,
        capacity_kb: int,
        line_words: int = 8,
        assoc: int = 2,
        name: str = "L1",
    ):
        line_bytes = line_words * WORD_BYTES
        total_lines = capacity_kb * 1024 // line_bytes
        if total_lines % assoc:
            raise ValueError(
                f"{capacity_kb}KB / {assoc}-way / {line_bytes}B lines does "
                "not divide evenly"
            )
        self.name = name
        self.line_words = line_words
        self.assoc = assoc
        self.n_sets = total_lines // assoc
        # sets[set_index] = list of (tag, dirty) in LRU order (front = LRU)
        self._sets: List[List[Tuple[int, bool]]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.line_words
        return line % self.n_sets, line // self.n_sets

    def access(self, address: int, write: bool = False) -> bool:
        """Touch ``address``; returns True on hit.  Updates LRU/dirty state."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        self.stats.accesses += 1
        for i, (t, dirty) in enumerate(ways):
            if t == tag:
                ways.pop(i)
                ways.append((tag, dirty or write))
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        if len(ways) >= self.assoc:
            _, victim_dirty = ways.pop(0)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
        ways.append((tag, write))
        return False

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return any(t == tag for t, _ in self._sets[set_index])

    def flush(self) -> int:
        """Invalidate everything; returns number of dirty lines written back."""
        dirty = sum(1 for ways in self._sets for _, d in ways if d)
        self.stats.writebacks += dirty
        self._sets = [[] for _ in range(self.n_sets)]
        return dirty


class BankedL1:
    """The level-1 data cache: several banks, each with its own port.

    The paper's baseline routes *every* operand through shared structures
    like the L1; its limited bandwidth is one of the two reasons the
    baseline starves (Section 5.2).  ``timed_access`` combines the
    functional hit/miss outcome with port arbitration to give a completion
    cycle.
    """

    def __init__(
        self,
        capacity_kb: int = 64,
        banks: int = 4,
        line_words: int = 8,
        assoc: int = 2,
        hit_latency: int = 3,
        l2_latency: int = 12,
        backing: Optional[MainMemory] = None,
    ):
        self.banks = [
            SetAssocCache(capacity_kb // banks, line_words, assoc, name=f"L1b{i}")
            for i in range(banks)
        ]
        self.ports = [PortQueue(1, name=f"L1p{i}") for i in range(banks)]
        self.hit_latency = hit_latency
        self.l2_latency = l2_latency
        self.line_words = line_words
        self.backing = backing

    def bank_of(self, address: int) -> int:
        return (address // self.line_words) % len(self.banks)

    def timed_access(self, address: int, cycle: int, write: bool = False) -> int:
        """Perform an access arriving at ``cycle``; return data-ready cycle."""
        bank = self.bank_of(address)
        grant = self.ports[bank].reserve(cycle)
        hit = self.banks[bank].access(address, write=write)
        latency = self.hit_latency + (0 if hit else self.l2_latency)
        if TRACE.enabled:
            TRACE.complete(
                MEM, f"l1 bank {bank}", "hit" if hit else "miss",
                ts=grant, dur=latency,
            )
        return grant + latency

    def timed_access_batch(
        self,
        addresses: Sequence[int],
        cycles: Union[int, Sequence[int]],
        write: bool = False,
    ) -> List[int]:
        """Batched twin of :meth:`timed_access` for whole address streams.

        Equivalent — in returned ready cycles, per-bank tag/LRU state,
        hit/miss/eviction/writeback statistics and port-queue state — to
        sequential :meth:`timed_access` calls in order.  ``cycles`` may
        be one arrival cycle for the whole stream or one per address.
        The bank, set and tag of every address are precomputed in one
        numpy pass (``line = addr // line_words``; ``bank = line %
        banks``; within a bank, ``set = line % n_sets``, ``tag = line //
        n_sets``) and the remaining per-access work — FIFO port grant
        plus the LRU way scan — runs as a tight loop with the bank
        structures held in locals.  The per-access path stands alone as
        the reference (and serves tracing, which needs one event per
        access, and numpy-free processes).
        """
        n = len(addresses)
        if isinstance(cycles, int):
            cycles = [cycles] * n
        if TRACE.enabled or np is None or n < 2:
            return [
                self.timed_access(address, cycle, write=write)
                for address, cycle in zip(addresses, cycles)
            ]
        lines = np.asarray(addresses, dtype=np.int64) // self.line_words
        n_banks = len(self.banks)
        n_sets = self.banks[0].n_sets
        bank_idx = (lines % n_banks).tolist()
        set_idx = (lines % n_sets).tolist()
        tags = (lines // n_sets).tolist()
        banks = self.banks
        ports = self.ports
        hit_latency = self.hit_latency
        miss_latency = hit_latency + self.l2_latency
        out: List[int] = []
        append = out.append
        for i in range(n):
            b = bank_idx[i]
            grant = ports[b].reserve(cycles[i])
            cache = banks[b]
            ways = cache._sets[set_idx[i]]
            stats = cache.stats
            stats.accesses += 1
            tag = tags[i]
            for j, (t, dirty) in enumerate(ways):
                if t == tag:
                    ways.pop(j)
                    ways.append((tag, dirty or write))
                    stats.hits += 1
                    append(grant + hit_latency)
                    break
            else:
                stats.misses += 1
                if len(ways) >= cache.assoc:
                    _, victim_dirty = ways.pop(0)
                    stats.evictions += 1
                    if victim_dirty:
                        stats.writebacks += 1
                ways.append((tag, write))
                append(grant + miss_latency)
        return out

    def warm(self, addresses) -> None:
        """Pre-touch addresses (used to model steady-state resident tables)."""
        for address in addresses:
            bank = self.bank_of(address)
            self.banks[bank].access(address)

    @property
    def stats(self) -> CacheStats:
        total = CacheStats()
        for bank in self.banks:
            total.accesses += bank.stats.accesses
            total.hits += bank.stats.hits
            total.misses += bank.stats.misses
            total.evictions += bank.stats.evictions
            total.writebacks += bank.stats.writebacks
        return total

    def reset_timing(self) -> None:
        for port in self.ports:
            port.reset()
