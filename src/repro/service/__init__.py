"""Simulation-as-a-service: a job queue and HTTP API over dispatch().

The repo's cross-cutting layers already make one simulation point
cheap to repeat (content-addressed run cache), observable (metrics,
ledger, progress snapshots) and parallel (``run_points``).  This
package turns that machinery into a *service* many clients can share:

* :mod:`repro.service.spec` — :class:`~repro.service.spec.SweepSpec`,
  the validated wire format of one sweep request (kernels × configs on
  a backend/engine core), building the same
  :class:`~repro.perf.parallel.SweepPoint` batches — and therefore the
  same cache addresses — as the ``repro-experiments`` CLI;
* :mod:`repro.service.jobs` — :class:`~repro.service.jobs.JobQueue`,
  an in-process queue with a background worker, run IDs, cancellation,
  per-job progress snapshots and ledger accounting;
* :mod:`repro.service.server` — the stdlib-only threaded HTTP API
  (``POST /jobs``, ``GET /jobs/{id}``, ``GET /jobs/{id}/results``,
  ``DELETE /jobs/{id}``, ``GET /healthz``);
* :mod:`repro.service.client` — the thin
  :class:`~repro.service.client.ServiceClient` the tests and the
  ``repro-submit`` CLI drive the API with;
* :mod:`repro.service.cli` — the ``repro-serve`` / ``repro-submit``
  entry points.

Because every point routes through :func:`repro.backends.dispatch`,
repeat traffic amortizes into cache hits: the first submission of a
spec simulates, every identical submission replays from the run cache
(byte-identical result payloads, near-zero wall time) while still
leaving ledger rows per point.
"""

from .client import ServiceClient, ServiceError
from .jobs import Job, JobQueue, JobState
from .server import ServiceHTTPServer, start_server
from .spec import SweepSpec

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "SweepSpec",
    "start_server",
]
