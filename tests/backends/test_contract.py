"""The backend contract, enforced across every registry entry.

Every registered machine model must resolve by name, simulate
deterministically, return a well-formed and identity-tagged
:class:`~repro.machine.stats.RunResult` that agrees with the
architecture-independent useful-operation count, survive the on-disk
run-cache JSON round trip, and produce fingerprints that can never
alias another backend's.  The suite is parametrized over
``backend_names()``, so a sixth registered backend is covered without
touching a test.
"""

import pytest

from repro.backends import (
    Backend,
    GridBackend,
    backend_names,
    create,
    dispatch,
    get,
    register,
    useful_ops,
)
from repro.kernels import spec
from repro.machine import GridProcessor, MachineConfig, MachineParams
from repro.machine.config import named_config
from repro.perf import (
    DEFAULT_BACKEND_PART,
    RunCache,
    SweepPoint,
    run_fingerprint,
    run_points,
    simulate_point,
)

ALL_BACKENDS = backend_names()


def config_for(name: str) -> MachineConfig:
    """A configuration every backend supports (stream needs the SMC)."""
    return MachineConfig.S_O() if name == "stream" else MachineConfig.baseline()


def small_point(backend: str, kernel: str = "convert") -> tuple:
    s = spec(kernel)
    k = s.kernel()
    return k, s.workload(16, 7), config_for(backend), MachineParams()


class TestRegistry:
    def test_all_five_models_registered(self):
        assert backend_names() == [
            "grid", "simd", "vector", "superscalar", "stream",
        ]

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_get_returns_shared_instance(self, name):
        backend = get(name)
        assert isinstance(backend, Backend)
        assert backend.name == name
        assert get(name) is backend

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_create_returns_fresh_instance(self, name):
        assert create(name) is not create(name)

    def test_get_passes_instances_through(self):
        backend = GridBackend()
        assert get(backend) is backend

    def test_unknown_name_lists_known_backends(self):
        with pytest.raises(KeyError, match="grid"):
            get("does-not-exist")

    def test_register_last_wins_and_clears_instance(self):
        class Shadow(GridBackend):
            """Instrumented double shadowing the grid entry."""

        original = get("grid")
        try:
            register("grid", Shadow)
            assert isinstance(get("grid"), Shadow)
        finally:
            register("grid", GridBackend)
        assert get("grid") is not original  # instance cache was cleared


class TestRunContract:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_deterministic_under_fixed_inputs(self, name):
        kernel, records, config, params = small_point(name)
        backend = get(name)
        first = dispatch(backend, kernel, records, config, params)
        second = dispatch(backend, kernel, records, config, params)
        assert first == second

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_result_is_well_formed_and_tagged(self, name):
        kernel, records, config, params = small_point(name)
        result = dispatch(get(name), kernel, records, config, params)
        assert result.kernel == "convert"
        assert result.records == len(records)
        assert result.cycles > 0
        assert result.detail["backend"] == name
        assert result.useful_ops == useful_ops(kernel, records)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_functional_outputs_match_oracle(self, name):
        from repro.isa.evaluate import evaluate_stream

        kernel, records, config, params = small_point(name)
        result = dispatch(
            get(name), kernel, records, config, params, functional=True
        )
        assert result.outputs == evaluate_stream(kernel, records)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_disk_cache_round_trip_is_faithful(self, name, tmp_path):
        kernel, records, config, params = small_point(name)
        result = dispatch(get(name), kernel, records, config, params)
        fp = run_fingerprint(
            kernel, config, params, records,
            backend=get(name).fingerprint_part(),
        )
        RunCache(tmp_path).put(fp, result)
        replayed = RunCache(tmp_path).get(fp)  # fresh instance: disk tier
        assert replayed == result
        assert replayed.detail["backend"] == name

    def test_stream_rejects_non_streaming_configs(self):
        kernel = spec("convert").kernel()
        backend = get("stream")
        assert not backend.supports(kernel, MachineConfig.baseline())
        assert backend.supports(kernel, MachineConfig.S())

    def test_grid_supports_matches_processor(self):
        """The backend is the single supports() implementation: the
        adapter and the raw processor can never disagree."""
        params = MachineParams(rows=2, cols=2)
        backend = get("grid")
        processor = GridProcessor(params)
        for kernel_name in ("convert", "md5", "rijndael"):
            kernel = spec(kernel_name).kernel()
            for config_name in ("baseline", "S-O-D", "M", "M-D"):
                config = named_config(config_name)
                assert backend.supports(kernel, config, params) == \
                    processor.supports(kernel, config)


class TestFingerprints:
    def test_backend_parts_are_distinct(self):
        parts = [get(name).fingerprint_part() for name in ALL_BACKENDS]
        assert len(set(parts)) == len(parts)

    def test_grid_part_is_the_legacy_default(self):
        """Addresses computed before the backend layer existed (and by
        call sites that never name a backend) are grid addresses."""
        assert get("grid").fingerprint_part() == DEFAULT_BACKEND_PART
        kernel, records, config, params = small_point("grid")
        assert run_fingerprint(kernel, config, params, records) == \
            run_fingerprint(
                kernel, config, params, records,
                backend=get("grid").fingerprint_part(),
            )

    def test_same_point_never_aliases_across_backends(self):
        kernel, records, config, params = small_point("grid")
        fps = {
            run_fingerprint(
                kernel, config, params, records,
                backend=get(name).fingerprint_part(),
            )
            for name in ALL_BACKENDS
        }
        assert len(fps) == len(ALL_BACKENDS)


class TestSweepIntegration:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_simulate_point_routes_to_the_backend(self, name):
        point = SweepPoint(
            kernel="convert",
            config=config_for(name),
            params=MachineParams(),
            records=16,
            workload_seed=7,
            backend=name,
        )
        result = simulate_point(point)
        assert result.detail["backend"] == name

    def test_point_backend_defaults_to_grid(self):
        point = SweepPoint(
            kernel="convert",
            config=MachineConfig.S(),
            params=MachineParams(),
            records=16,
            workload_seed=7,
        )
        assert point.backend == "grid"
        assert simulate_point(point).detail["backend"] == "grid"

    def test_serial_and_parallel_sweeps_agree(self):
        points = [
            SweepPoint(
                kernel=kernel,
                config=config_for(backend),
                params=MachineParams(),
                records=16,
                workload_seed=7,
                backend=backend,
            )
            for backend in ("vector", "simd", "superscalar")
            for kernel in ("convert", "fft")
        ]
        serial = run_points(points, jobs=1)
        parallel = run_points(points, jobs=2)
        assert serial == parallel

    def test_workers_share_the_disk_cache_across_backends(self, tmp_path):
        point = SweepPoint(
            kernel="fft",
            config=MachineConfig.baseline(),
            params=MachineParams(),
            records=16,
            workload_seed=7,
            cache_dir=str(tmp_path),
            backend="simd",
        )
        first = simulate_point(point)
        cache = RunCache(tmp_path)
        simulate_point(point)  # replayed from disk, not re-simulated
        fp = run_fingerprint(
            spec("fft").kernel(),
            point.config,
            point.params,
            spec("fft").workload(16, 7),
            backend=get("simd").fingerprint_part(),
        )
        assert cache.get(fp) == first


class TestExperimentContext:
    def test_second_backend_run_hits_the_cache(self, tmp_path):
        """The acceptance check: a repeated ``--backend simd`` sweep is
        served from the on-disk run cache."""
        from repro.harness import experiments

        def context():
            return experiments.ExperimentContext(
                records=16, large_kernel_records=16,
                cache_dir=tmp_path, backend="simd",
            )

        first_ctx = context()
        first = first_ctx.run("convert", MachineConfig.baseline())
        assert first_ctx.cache.stats.stores == 1

        second_ctx = context()  # fresh process-equivalent: no memory tier
        second = second_ctx.run("convert", MachineConfig.baseline())
        assert second_ctx.cache.stats.hits >= 1
        assert second_ctx.cache.stats.misses == 0
        assert second == first
        assert second.detail["backend"] == "simd"

    def test_backends_never_share_cache_entries(self, tmp_path):
        from repro.harness import experiments

        ctx = experiments.ExperimentContext(
            records=16, large_kernel_records=16, cache_dir=tmp_path,
        )
        grid = ctx.run("convert", MachineConfig.baseline())
        vector = ctx.run("convert", MachineConfig.baseline(),
                         backend="vector")
        assert grid.detail["backend"] == "grid"
        assert vector.detail["backend"] == "vector"
        assert grid.cycles != vector.cycles or grid != vector

    def test_supports_routes_through_the_backend(self):
        from repro.harness import experiments

        ctx = experiments.ExperimentContext(
            records=16, large_kernel_records=16,
        )
        assert not ctx.supports("convert", MachineConfig.baseline(),
                                backend="stream")
        assert ctx.supports("convert", MachineConfig.S(), backend="stream")
        assert ctx.supports("convert", MachineConfig.baseline())
