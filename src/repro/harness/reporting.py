"""Plain-text table rendering for the experiment reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_left: Optional[Sequence[int]] = None,
) -> str:
    """Render an ASCII table (first column left-aligned by default)."""
    if align_left is None:
        align_left = (0,)
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if i in align_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def fmt_float(value: Optional[float], digits: int = 2) -> str:
    """Format a float (or None, rendered as a dash) for table cells."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def fmt_speedup(value: Optional[float]) -> str:
    """Format a speedup factor like ``2.50x`` (None renders as a dash)."""
    if value is None:
        return "-"
    return f"{value:.2f}x"
