"""Wall-clock phase accounting for the simulation pipeline.

``repro-bench`` wants to attribute a sweep's wall time to the pipeline's
phases — window **mapping** (placement + instance expansion, or a cache
rebase), cycle-level **engine** simulation (block-style vs MIMD), and
the MIMD **memory** interface traffic (record fetch + store drain, the
part the batch APIs target) — so a hot-path regression can be localized
without re-profiling.

The accumulator is a process-global, explicitly enabled instrument:
when ``PHASES.enabled`` is False (the default) the instrumented code
paths pay a single attribute test and no clock reads, so normal runs
are unaffected.  Workers in a process pool accumulate into their own
copy; phase breakdowns are therefore meaningful for serial runs (which
is what the benchmark measures them on).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict


class PhaseAccumulator:
    """Accumulates seconds per named phase while enabled."""

    __slots__ = ("enabled", "seconds")

    def __init__(self) -> None:
        self.enabled = False
        self.seconds: Dict[str, float] = {}

    def add(self, name: str, elapsed: float) -> None:
        """Credit ``elapsed`` wall seconds to ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def reset(self) -> None:
        self.seconds = {}

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of the accumulated seconds."""
        return dict(self.seconds)


#: The process-wide accumulator the engines report into.
PHASES = PhaseAccumulator()


class measuring:
    """Context manager enabling PHASES around a block and restoring after.

    >>> with measuring() as acc:
    ...     run_experiments()
    >>> acc.snapshot()

    Nesting is safe: an inner ``measuring()`` opened while an outer one
    is active measures its own block from zero, then folds its seconds
    back into the outer accumulation on exit (the inner block's time is
    part of the outer block's time).  Nested users should snapshot
    *inside* their ``with`` block — after exit the accumulator holds the
    merged outer view.
    """

    def __init__(self, reset: bool = True):
        self._reset = reset
        self._was_enabled = False
        self._outer_seconds: Dict[str, float] = {}

    def __enter__(self) -> PhaseAccumulator:
        self._was_enabled = PHASES.enabled
        if self._reset:
            # Save (don't drop) an enclosing scope's accumulation: the
            # reset must scope this measurement, not clobber the outer.
            if self._was_enabled:
                self._outer_seconds = PHASES.seconds
            PHASES.reset()
        PHASES.enabled = True
        return PHASES

    def __exit__(self, *exc) -> None:
        PHASES.enabled = self._was_enabled
        if self._outer_seconds:
            inner = PHASES.seconds
            PHASES.seconds = self._outer_seconds
            self._outer_seconds = {}
            for name, elapsed in inner.items():
                PHASES.add(name, elapsed)


__all__ = ["PHASES", "PhaseAccumulator", "measuring", "perf_counter"]
