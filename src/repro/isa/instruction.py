"""Dataflow instructions and their operand kinds.

Instructions follow the TRIPS statically-placed / dynamically-issued
(SPDI) model: an instruction names its *sources*; the kernel container
derives the consumer (target) map, which is what the real ISA encodes.

Operand kinds mirror the paper's four memory-behaviour classes
(Section 2.1.1):

* :class:`RecordInput` — an element of the kernel's input record
  (*regular memory access*, served by the SMC/streaming channels or the
  L1 cache depending on machine configuration),
* :class:`Const` — a *scalar named constant* kept in a register and the
  target of operand revitalization,
* ``LDI`` instructions with a computed address — *irregular memory*
  served by the cached L1 subsystem,
* ``LUT`` instructions — *indexed named constants* served by the L0 data
  store when the machine configuration provides one.

``Immediate`` operands are literals baked into the instruction encoding
(shift amounts and the like); they cost nothing at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .opcodes import OpcodeInfo, opcode


@dataclass(frozen=True)
class InstResult:
    """Operand produced by another instruction in the same kernel."""

    producer: int

    def __repr__(self) -> str:
        return f"%{self.producer}"


@dataclass(frozen=True)
class RecordInput:
    """Operand read from the input record (regular memory access)."""

    index: int

    def __repr__(self) -> str:
        return f"in[{self.index}]"


@dataclass(frozen=True)
class Const:
    """Scalar named constant held in a register across the kernel run."""

    slot: int
    value: Union[int, float]
    name: str = ""

    def __repr__(self) -> str:
        label = self.name or f"c{self.slot}"
        return f"${label}={self.value!r}"


@dataclass(frozen=True)
class Immediate:
    """Literal encoded in the instruction itself (free at run time)."""

    value: Union[int, float]

    def __repr__(self) -> str:
        return f"#{self.value!r}"


Operand = Union[InstResult, RecordInput, Const, Immediate]


@dataclass
class Instruction:
    """One dataflow instruction.

    Attributes:
        iid: Index of the instruction within its kernel.
        op: Static opcode information.
        srcs: Dataflow operands, one per opcode arity.
        table: For ``LUT`` ops, the id of the kernel lookup table accessed.
        space: For ``LDI`` ops, the id of the irregular memory space read.
        loop_iter: If the instruction belongs to the body of a
            data-dependent loop, the (zero-based) iteration it was unrolled
            from; ``None`` for straight-line work.  MIMD execution skips
            iterations beyond a record's actual trip count, while
            SIMD-style execution runs all of them with nullification —
            exactly the paper's predication-overhead argument.
        name: Optional human-readable label for traces and disassembly.
    """

    iid: int
    op: OpcodeInfo
    srcs: List[Operand]
    table: Optional[int] = None
    space: Optional[int] = None
    loop_iter: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.srcs) != self.op.arity:
            raise ValueError(
                f"instruction {self.iid} ({self.op.name}) expects "
                f"{self.op.arity} operands, got {len(self.srcs)}"
            )
        if self.op.name == "LUT" and self.table is None:
            raise ValueError(f"LUT instruction {self.iid} missing table id")
        if self.op.name == "LDI" and self.space is None:
            raise ValueError(f"LDI instruction {self.iid} missing memory space id")

    @property
    def useful(self) -> bool:
        """Whether this op counts toward the paper's useful-ops metric."""
        return self.op.useful

    def dataflow_sources(self) -> List[int]:
        """Producer instruction ids this instruction waits on."""
        return [s.producer for s in self.srcs if isinstance(s, InstResult)]

    def rewrite(self, **changes) -> "Instruction":
        """Return a copy with the given fields replaced."""
        merged = dict(
            iid=self.iid, op=self.op, srcs=list(self.srcs), table=self.table,
            space=self.space, loop_iter=self.loop_iter, name=self.name,
        )
        merged.update(changes)
        return Instruction(**merged)

    def __repr__(self) -> str:
        parts = ", ".join(repr(s) for s in self.srcs)
        extra = ""
        if self.table is not None:
            extra += f" table={self.table}"
        if self.space is not None:
            extra += f" space={self.space}"
        if self.loop_iter is not None:
            extra += f" iter={self.loop_iter}"
        return f"%{self.iid} = {self.op.name}({parts}){extra}"


def make_instruction(
    iid: int,
    mnemonic: str,
    srcs: List[Operand],
    *,
    table: Optional[int] = None,
    space: Optional[int] = None,
    loop_iter: Optional[int] = None,
    name: str = "",
) -> Instruction:
    """Convenience constructor resolving the mnemonic to opcode info."""
    return Instruction(
        iid=iid, op=opcode(mnemonic), srcs=srcs, table=table, space=space,
        loop_iter=loop_iter, name=name,
    )
