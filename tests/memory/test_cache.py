"""Set-associative cache: functional tag behaviour + banked timing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import BankedL1, SetAssocCache


class TestSetAssocCache:
    def test_capacity_geometry(self):
        c = SetAssocCache(capacity_kb=8, line_words=8, assoc=2)
        assert c.n_sets * c.assoc * c.line_words * 8 == 8 * 1024

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(capacity_kb=1, line_words=8, assoc=3)

    def test_cold_miss_then_hit(self):
        c = SetAssocCache(8)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(7)  # same line
        assert not c.access(8)  # next line

    def test_lru_eviction_order(self):
        c = SetAssocCache(8, line_words=8, assoc=2)
        stride = c.n_sets * c.line_words  # same set, different tags
        c.access(0)
        c.access(stride)
        c.access(0)  # touch 0: stride becomes LRU
        c.access(2 * stride)  # evicts stride
        assert c.access(0)
        assert not c.access(stride)

    def test_writeback_counting(self):
        c = SetAssocCache(8, line_words=8, assoc=1)
        stride = c.n_sets * c.line_words
        c.access(0, write=True)
        c.access(stride)  # evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_flush_reports_dirty_lines(self):
        c = SetAssocCache(8)
        c.access(0, write=True)
        c.access(64)
        assert c.flush() == 1
        assert not c.contains(0)

    @given(st.lists(st.integers(min_value=0, max_value=4095), max_size=300))
    @settings(max_examples=30)
    def test_resident_lines_bounded_by_capacity(self, addresses):
        c = SetAssocCache(2, line_words=4, assoc=2)
        for a in addresses:
            c.access(a)
        resident = sum(len(ways) for ways in c._sets)
        assert resident <= c.n_sets * c.assoc
        assert c.stats.hits + c.stats.misses == len(addresses)


class TestBankedL1:
    def test_banks_partition_address_space(self):
        l1 = BankedL1(capacity_kb=64, banks=4, line_words=8)
        banks = {l1.bank_of(line * 8) for line in range(8)}
        assert banks == {0, 1, 2, 3}

    def test_hit_and_miss_latency(self):
        l1 = BankedL1(banks=1, hit_latency=3, l2_latency=12)
        t_miss = l1.timed_access(0, cycle=0)
        l1.reset_timing()
        t_hit = l1.timed_access(0, cycle=0)
        assert t_miss == 15
        assert t_hit == 3

    def test_port_contention_serializes(self):
        l1 = BankedL1(banks=1)
        l1.warm([0, 8, 16])
        t = [l1.timed_access(a, cycle=0) for a in (0, 8, 16)]
        assert t == [3, 4, 5]

    def test_different_banks_run_parallel(self):
        l1 = BankedL1(banks=4)
        l1.warm([0, 8])
        a = l1.timed_access(0, cycle=0)
        b = l1.timed_access(8, cycle=0)
        assert a == b == 3

    def test_aggregate_stats(self):
        l1 = BankedL1(banks=2)
        l1.timed_access(0, 0)
        l1.timed_access(8, 0)
        assert l1.stats.accesses == 2
        assert l1.stats.misses == 2
