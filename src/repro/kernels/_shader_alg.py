"""Shared shader algebra for the graphics kernels.

Each shader's math is written once against this small operation algebra
and instantiated twice: with :class:`BuilderAlg` to emit the dataflow
kernel, and with :class:`FloatAlg` to produce the bit-identical pure
Python reference.  This removes any chance of the kernel and its
reference drifting apart structurally.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List, Sequence

from ..isa import KernelBuilder


class BuilderAlg:
    """Algebra that emits instructions through a KernelBuilder."""

    def __init__(self, builder: KernelBuilder):
        self.b = builder
        self._tables: Dict[str, int] = {}
        self._spaces: Dict[str, int] = {}

    # -- values
    def const(self, value: float, name: str = ""):
        return self.b.const(value, name)

    def imm(self, value: float):
        return self.b.imm(value)

    def register_table(self, key: str, values: Sequence[float]) -> None:
        self._tables[key] = self.b.table(values)

    def register_space(self, key: str, values: Sequence[float]) -> None:
        self._spaces[key] = self.b.space(values)

    # -- arithmetic
    def mul(self, a, b):
        return self.b.fmul(a, b)

    def add(self, a, b):
        return self.b.fadd(a, b)

    def sub(self, a, b):
        return self.b.fsub(a, b)

    def madd(self, a, b, c):
        return self.b.fmadd(a, b, c)

    def max(self, a, b):
        return self.b.fmax(a, b)

    def min(self, a, b):
        return self.b.fmin(a, b)

    def abs(self, a):
        return self.b.fabs(a)

    def neg(self, a):
        return self.b.fneg(a)

    def rsqrt(self, a):
        return self.b.frsqrt(a)

    def rcp(self, a):
        return self.b.frcp(a)

    def pow(self, a, b):
        return self.b.fpow(a, b)

    def exp2(self, a):
        return self.b.fexp2(a)

    def floor(self, a):
        return self.b.ffloor(a)

    def sel(self, c, a, b):
        """a if c > 0 else b."""
        return self.b.fsel(c, a, b)

    # -- memory
    def addr(self, a, b, c):
        """Overhead address generation: a*b + c."""
        return self.b.fgen(a, b, c)

    def table_fetch(self, key: str, index):
        return self.b.lut(self._tables[key], index)

    def tex_fetch(self, key: str, address):
        return self.b.ldi(self._spaces[key], address)


class FloatAlg:
    """Plain-float mirror of :class:`BuilderAlg` (the reference)."""

    def __init__(self):
        self._tables: Dict[str, List[float]] = {}
        self._spaces: Dict[str, List[float]] = {}

    def const(self, value: float, name: str = "") -> float:
        return value

    def imm(self, value: float) -> float:
        return value

    def register_table(self, key: str, values: Sequence[float]) -> None:
        self._tables[key] = list(values)

    def register_space(self, key: str, values: Sequence[float]) -> None:
        self._spaces[key] = list(values)

    def mul(self, a, b):
        return a * b

    def add(self, a, b):
        return a + b

    def sub(self, a, b):
        return a - b

    def madd(self, a, b, c):
        return a * b + c

    def max(self, a, b):
        return max(a, b)

    def min(self, a, b):
        return min(a, b)

    def abs(self, a):
        return abs(a)

    def neg(self, a):
        return -a

    def rsqrt(self, a):
        return 1.0 / math.sqrt(a) if a > 0.0 else math.inf

    def rcp(self, a):
        return 1.0 / a if a != 0.0 else math.inf

    def pow(self, a, b):
        if a < 0.0:
            a = 0.0
        if a == 0.0:
            return 0.0 if b > 0.0 else 1.0
        return math.pow(a, b)

    def exp2(self, a):
        return math.pow(2.0, a)

    def floor(self, a):
        return math.floor(a)

    def sel(self, c, a, b):
        return a if c > 0.0 else b

    def addr(self, a, b, c):
        return a * b + c

    def table_fetch(self, key: str, index):
        table = self._tables[key]
        return table[int(index) % len(table)]

    def tex_fetch(self, key: str, address):
        space = self._spaces[key]
        return space[int(address) % len(space)]


# ---- shared shader math --------------------------------------------------------


def dot3(alg, a, b):
    """3-component dot product (mul + 2 madds)."""
    return alg.madd(a[2], b[2], alg.madd(a[1], b[1], alg.mul(a[0], b[0])))


def normalize3(alg, v):
    """Normalize a 3-vector (dot, rsqrt, scale)."""
    inv = alg.rsqrt(dot3(alg, v, v))
    return [alg.mul(v[0], inv), alg.mul(v[1], inv), alg.mul(v[2], inv)]


def mat34_transform(alg, rows, point):
    """rows: 3 rows of 4 values (algebra constants); applies to xyz1."""
    return [
        alg.add(dot3(alg, row[:3], point), row[3]) for row in rows
    ]


def mat33_transform(alg, rows, vector):
    """Apply a 3x3 matrix (rows of algebra constants) to a vector."""
    return [dot3(alg, row, vector) for row in rows]


# ---- deterministic scene constants -------------------------------------------------


def scene_rng(tag: str) -> random.Random:
    """Deterministic RNG for scene constants, keyed by tag.

    Seeded from crc32, not ``hash()`` — string hashing is randomized
    per process (PYTHONHASHSEED), which would give every process its
    own scene constants and defeat cross-process run caching.
    """
    return random.Random(zlib.crc32(tag.encode("utf-8")) ^ 0x5EED)


def make_matrix34(tag: str) -> List[List[float]]:
    """A deterministic 3x4 transform for the tagged scene object."""
    rng = scene_rng(tag)
    return [
        [rng.uniform(-1.0, 1.0) for _ in range(3)] + [rng.uniform(-2.0, 2.0)]
        for _ in range(3)
    ]


def make_matrix33(tag: str) -> List[List[float]]:
    """A deterministic 3x3 matrix for the tagged scene object."""
    rng = scene_rng(tag)
    return [[rng.uniform(-1.0, 1.0) for _ in range(3)] for _ in range(3)]


def make_unit(tag: str) -> List[float]:
    """A deterministic unit 3-vector for the tagged scene object."""
    rng = scene_rng(tag)
    v = [rng.uniform(-1.0, 1.0) for _ in range(3)]
    norm = math.sqrt(sum(c * c for c in v)) or 1.0
    return [c / norm for c in v]


def make_texture(tag: str, size: int) -> List[float]:
    """A deterministic texture of ``size`` luminance values."""
    rng = scene_rng(tag)
    return [rng.uniform(0.0, 1.0) for _ in range(size)]
