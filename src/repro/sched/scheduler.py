"""The claim session: one job's point lifecycle against a claim store.

:class:`ClaimSession` is the layer every execution path now drives —
``run_points``'s serial and pool consumers, the experiment harness's
in-context loop, the service queue's worker threads and the
``repro-worker`` CLI all speak the same four verbs:

``enqueue``
    insert this job's points as PENDING rows (idempotent — resuming an
    interrupted job adopts the existing rows, finished work included);
``claim``
    atomically take a batch of runnable rows (PENDING, or CLAIMED with
    an expired lease) under this session's worker id + lease deadline;
``complete`` / ``fail``
    guarded terminal transitions carrying the serialized result (or
    the error) — the durable record other workers and restarted
    services adopt;
``wait_remaining``
    resolve rows another worker claimed: adopt their DONE results,
    re-run anything whose lease expired, surface FAILED loudly.

The store is either the WAL-mode sqlite ledger
(:class:`~repro.obs.ledger.RunLedger` — durable, shared across
processes and hosts) or the in-process
:class:`~repro.sched.store.MemoryClaimStore` when no ledger is
configured.  Durable sessions renew their lease deadlines from a
heartbeat thread, so long-running points are never reclaimed out from
under a live worker; a *dead* worker stops heartbeating and its claims
expire — that is the whole crash-recovery story.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional

from ..obs.ledger import (
    LEDGER,
    POINT_CANCELLED,
    POINT_CLAIMED,
    POINT_DONE,
    POINT_FAILED,
    RunLedger,
)
from ..obs.progress import point_label
from .codec import encode_point, point_fingerprint
from .store import MemoryClaimStore

#: Default claim lease: generous against slow points (a live worker
#: heartbeats well before this), short enough that a crashed worker's
#: points come back within a couple of minutes.
DEFAULT_LEASE_SECONDS = 120.0


class SweepCancelled(RuntimeError):
    """A sweep stopped because its claims were revoked (job cancel)."""


def default_worker_id() -> str:
    """A worker identity unique across hosts, processes and threads."""
    return (
        f"{platform.node()}:{os.getpid()}:{threading.get_ident()}"
    )


def _label(point) -> str:
    return point_label(point.backend, point.kernel, point.config.name)


class ClaimSession:
    """One job's view of a claim store (see the module docstring)."""

    def __init__(
        self,
        store,
        job_id: Optional[str] = None,
        worker_id: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        cancel_check: Optional[Callable[[], bool]] = None,
        owns_store: bool = False,
    ):
        self.store = store
        self.job_id = job_id or uuid.uuid4().hex
        self.worker_id = worker_id or default_worker_id()
        self.lease_seconds = float(lease_seconds)
        self._cancel_check = cancel_check
        self._owns_store = owns_store
        self._points: List[Any] = []
        self._hb_stop = threading.Event()
        self._hb_thread: Optional[threading.Thread] = None
        self._closed = False

    # ---- enqueue ------------------------------------------------------------

    def enqueue(self, points) -> List[Any]:
        """Insert the job's points; returns fingerprint-filled copies.

        Durable stores key rows by content fingerprint (computed here
        once, unless the caller pre-filled it) and carry a serialized
        spec any worker can rebuild the point from.  The in-memory
        store skips both — nothing outlives the process there.
        """
        import dataclasses

        if self.store.durable:
            filled = []
            for point in points:
                fp = point.fingerprint or point_fingerprint(point)
                filled.append(
                    point if point.fingerprint == fp
                    else dataclasses.replace(point, fingerprint=fp)
                )
            rows = [
                {
                    "seq": seq,
                    "fingerprint": point.fingerprint,
                    "label": _label(point),
                    "backend": point.backend,
                    "spec": json.dumps(
                        encode_point(point), sort_keys=True
                    ),
                }
                for seq, point in enumerate(filled)
            ]
        else:
            filled = list(points)
            rows = [
                {
                    "seq": seq,
                    "fingerprint": point.fingerprint,
                    "label": _label(point),
                    "backend": point.backend,
                    "spec": None,
                }
                for seq, point in enumerate(filled)
            ]
        self._points = filled
        self.store.enqueue_points(self.job_id, rows)
        return filled

    @property
    def points(self) -> List[Any]:
        """The enqueued points, seq-indexed (after :meth:`enqueue`)."""
        return self._points

    def point(self, seq: int):
        return self._points[seq]

    # ---- claim / transition -------------------------------------------------

    def claim(self, limit: Optional[int] = None) -> List[int]:
        """Claim up to ``limit`` runnable seqs of *this* job."""
        rows = self.store.claim_points(
            self.worker_id, limit=limit,
            lease_seconds=self.lease_seconds, job_id=self.job_id,
        )
        if rows:
            self._ensure_heartbeat()
        return [row["seq"] for row in rows]

    def complete(
        self,
        seq: int,
        result,
        wall_seconds: Optional[float] = None,
        cache: Optional[str] = None,
    ) -> bool:
        """Record one finished point (serialized for durable stores)."""
        if self.store.durable:
            from ..perf.cache import run_result_to_dict

            doc: Any = run_result_to_dict(result)
        else:
            doc = result
        return self.store.complete_point(
            self.job_id, seq, self.worker_id, result_doc=doc,
            wall_seconds=wall_seconds, cache=cache,
        )

    def fail(self, seq: int, error: str) -> bool:
        return self.store.fail_point(
            self.job_id, seq, self.worker_id, str(error)
        )

    def release(self) -> int:
        """Hand this session's unfinished claims back to PENDING."""
        return self.store.release_points(self.worker_id, self.job_id)

    def revoke_pending(self) -> int:
        return self.store.revoke_pending(self.job_id)

    # ---- cancellation -------------------------------------------------------

    def cancelled(self) -> bool:
        return bool(self._cancel_check and self._cancel_check())

    def raise_if_cancelled(self) -> None:
        """Release claims, revoke pending rows, raise SweepCancelled."""
        if not self.cancelled():
            return
        self.release()
        revoked = self.revoke_pending()
        counts = self.store.point_counts(self.job_id)
        done = counts.get(POINT_DONE, 0)
        total = sum(counts.values())
        raise SweepCancelled(
            f"cancelled after {done} of {total} point(s) "
            f"({revoked} revoked)"
        )

    # ---- foreign-row resolution ---------------------------------------------

    def payload_from_row(self, row: Dict[str, Any], timed: bool = False):
        """A run_points-shaped payload from a DONE claim row."""
        doc = row.get("result")
        if isinstance(doc, str):
            doc = json.loads(doc)
        if isinstance(doc, dict):
            from ..perf.cache import run_result_from_dict

            result = run_result_from_dict(doc)
        else:
            result = doc  # the memory store holds the live object
        if timed:
            return result, float(row.get("wall_seconds") or 0.0)
        return result

    def wait_remaining(
        self,
        payloads: Dict[int, Any],
        runner: Callable[[int], Any],
        timed: bool = False,
        poll_seconds: float = 0.05,
        on_adopted: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    ) -> None:
        """Fill ``payloads`` for every seq another worker took.

        Adopts DONE rows (deserializing the stored result), re-claims
        and runs anything whose lease expired (``runner(seq)`` must
        complete the row and return the payload), raises on FAILED or
        revoked rows, and polls while a live foreign worker holds a
        fresh lease.
        """
        total = len(self._points)
        while True:
            missing = [s for s in range(total) if s not in payloads]
            if not missing:
                return
            self.raise_if_cancelled()
            progressed = False
            for seq in self.claim():
                payloads[seq] = runner(seq)
                progressed = True
            missing = [s for s in range(total) if s not in payloads]
            if not missing:
                return
            rows = {
                row["seq"]: row
                for row in self.store.point_rows(
                    self.job_id, with_result=True
                )
            }
            for seq in missing:
                row = rows.get(seq)
                if row is None:
                    raise RuntimeError(
                        f"point {seq} of job {self.job_id} is missing "
                        "from the claim store"
                    )
                if row["status"] == POINT_DONE:
                    payloads[seq] = self.payload_from_row(row, timed)
                    if on_adopted is not None:
                        on_adopted(seq, row)
                    progressed = True
                elif row["status"] == POINT_FAILED:
                    raise RuntimeError(
                        f"point {row.get('label') or seq} failed on "
                        f"worker {row.get('worker')!r}: {row.get('error')}"
                    )
                elif row["status"] == POINT_CANCELLED:
                    raise SweepCancelled(
                        f"point {row.get('label') or seq} of job "
                        f"{self.job_id} was revoked"
                    )
            if not progressed:
                time.sleep(poll_seconds)

    # ---- accounting ---------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        return self.store.point_counts(self.job_id)

    def cache_verdicts(self) -> Dict[str, int]:
        """Cache-verdict counts over this job's finished rows."""
        counts: Dict[str, int] = {}
        for row in self.store.point_rows(self.job_id):
            verdict = row.get("cache")
            if verdict:
                counts[verdict] = counts.get(verdict, 0) + 1
        return dict(sorted(counts.items()))

    def progress_snapshot(
        self, started_at: Optional[float] = None
    ) -> Dict[str, Any]:
        """A ProgressTracker-shaped snapshot from the claim store.

        Same keys as
        :meth:`~repro.obs.progress.ProgressTracker.get_current_state`,
        so clients and renderers work unchanged — but composed from
        durable rows, which makes it correct across N queue workers,
        foreign claimers and service restarts.
        """
        rows = self.store.point_rows(self.job_id)
        completed = sum(1 for r in rows if r["status"] == POINT_DONE)
        total = max(len(rows), completed)
        in_flight = sorted(
            r["label"] or f"seq {r['seq']}"
            for r in rows if r["status"] == POINT_CLAIMED
        )
        per_backend: Dict[str, int] = {}
        last_point = None
        last_stamp = None
        for row in rows:
            if row["status"] != POINT_DONE:
                continue
            backend = row.get("backend")
            if backend:
                per_backend[backend] = per_backend.get(backend, 0) + 1
            stamp = row.get("finished_at")
            if stamp is not None and (
                last_stamp is None or stamp >= last_stamp
            ):
                last_stamp = stamp
                last_point = row.get("label")
        elapsed = (
            max(0.0, time.time() - started_at)
            if started_at is not None else 0.0
        )
        rate = completed / elapsed if elapsed > 0 else 0.0
        remaining = max(0, total - completed)
        return {
            "completed": completed,
            "total": total,
            "in_flight": in_flight,
            "elapsed_seconds": elapsed,
            "points_per_second": rate,
            "eta_seconds": remaining / rate if rate > 0 else None,
            "per_backend": dict(sorted(per_backend.items())),
            "last_point": last_point,
        }

    # ---- lease heartbeat ----------------------------------------------------

    def _ensure_heartbeat(self) -> None:
        if not self.store.durable or self._closed:
            return
        if self._hb_thread is not None and self._hb_thread.is_alive():
            return
        interval = max(0.5, self.lease_seconds / 3.0)

        def beat() -> None:
            while not self._hb_stop.wait(interval):
                try:
                    self.store.renew_leases(
                        self.worker_id, self.lease_seconds,
                        job_id=self.job_id,
                    )
                except Exception:
                    # A failed heartbeat only risks an early reclaim of
                    # still-running points — double work, never wrong
                    # results; the guarded complete keeps one winner.
                    pass

        self._hb_stop.clear()
        self._hb_thread = threading.Thread(
            target=beat, name="repro-sched-heartbeat", daemon=True
        )
        self._hb_thread.start()

    def close(self, release: bool = True) -> None:
        """Stop the heartbeat, hand back claims, drop an owned store."""
        if self._closed:
            return
        self._closed = True
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=2.0)
        try:
            if release:
                self.release()
        finally:
            if self._owns_store:
                try:
                    self.store.close()
                except Exception:
                    pass

    def __enter__(self) -> "ClaimSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def session_for_points(
    points,
    job_id: Optional[str] = None,
    cancel_check: Optional[Callable[[], bool]] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
) -> ClaimSession:
    """The right session for a point batch: durable when a ledger is.

    The store is the first explicit ``ledger_path`` the points carry,
    else the process-wide :data:`LEDGER`'s database when enabled, else
    an in-memory store (identical semantics, zero durability).
    """
    path = next(
        (p.ledger_path for p in points if p.ledger_path is not None), None
    )
    if path is None and LEDGER.enabled:
        path = LEDGER.path
    if path is not None:
        return ClaimSession(
            RunLedger(path), job_id=job_id, cancel_check=cancel_check,
            lease_seconds=lease_seconds, owns_store=True,
        )
    return ClaimSession(
        MemoryClaimStore(), job_id=job_id, cancel_check=cancel_check,
        lease_seconds=lease_seconds,
    )


__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "ClaimSession",
    "SweepCancelled",
    "default_worker_id",
    "session_for_points",
]
