"""End-to-end cryptographic validation of the network kernels.

The strongest correctness statement in the repository: running the
*dataflow kernels* (the graphs the machine executes) over packet streams
produces digests/ciphertexts identical to hashlib and the reference
ciphers.
"""

import hashlib

import pytest

from repro.crypto import Blowfish, aes_encrypt_block
from repro.isa import evaluate_kernel
from repro.kernels import blowfish as bf_mod
from repro.kernels import md5 as md5_mod
from repro.kernels import rijndael as rj_mod
from repro.workloads.packets import MD5_IV_WORDS, md5_block_records


class TestMd5Kernel:
    def test_single_block_digest_matches_hashlib(self):
        """A <=55-byte message fits one padded block: the kernel's output
        state, serialized, must equal hashlib's digest."""
        kernel = md5_mod.build_kernel()
        for message in (b"", b"abc", b"message digest", b"a" * 55):
            from repro.crypto.md5_ref import pad

            records = md5_block_records([pad(message)[:64]], limit=1)
            # md5_block_records pads to 64 itself; pass the padded block.
            out = evaluate_kernel(kernel, records[0])
            digest = b"".join(
                half.to_bytes(4, "little")
                for word in out
                for half in ((word >> 32) & 0xFFFFFFFF, word & 0xFFFFFFFF)
            )
            assert digest == hashlib.md5(message).digest(), message

    def test_chained_blocks_digest_matches_hashlib(self):
        """Multi-block digest: chain the kernel across a long message."""
        from repro.crypto.md5_ref import pad

        kernel = md5_mod.build_kernel()
        message = bytes(range(256)) * 2  # 512 bytes -> 9 padded blocks
        data = pad(message)
        state = list(MD5_IV_WORDS)
        for offset in range(0, len(data), 64):
            records = md5_block_records([data[offset:offset + 64]], limit=1,
                                        iv=state)
            state = evaluate_kernel(kernel, records[0])
        digest = b"".join(
            half.to_bytes(4, "little")
            for word in state
            for half in ((word >> 32) & 0xFFFFFFFF, word & 0xFFFFFFFF)
        )
        assert digest == hashlib.md5(message).digest()


class TestBlowfishKernel:
    def test_kernel_encrypts_like_reference_cipher(self):
        kernel = bf_mod.build_kernel()
        cipher = Blowfish(bf_mod.DEFAULT_KEY)
        for record in bf_mod.workload(32):
            out = evaluate_kernel(kernel, record)[0]
            block = record[0].to_bytes(8, "big")
            assert out.to_bytes(8, "big") == cipher.encrypt_block(block)

    def test_kernel_with_custom_key(self):
        key = b"another-secret-key"
        kernel = bf_mod.build_kernel(key)
        cipher = Blowfish(key)
        record = bf_mod.workload(1)[0]
        out = evaluate_kernel(kernel, record)[0]
        assert out.to_bytes(8, "big") == cipher.encrypt_block(
            record[0].to_bytes(8, "big")
        )


class TestRijndaelKernel:
    def test_kernel_encrypts_like_fips_aes(self):
        kernel = rj_mod.build_kernel()
        for record in rj_mod.workload(16):
            out = evaluate_kernel(kernel, record)
            block = b"".join(w.to_bytes(8, "big") for w in record)
            expected = aes_encrypt_block(block, rj_mod.DEFAULT_KEY)
            got = b"".join(w.to_bytes(8, "big") for w in out)
            assert got == expected

    def test_fips_vector_through_the_kernel(self):
        from repro.crypto import AES_FIPS_VECTOR

        key, plaintext, ciphertext = AES_FIPS_VECTOR
        kernel = rj_mod.build_kernel(key)
        record = [
            int.from_bytes(plaintext[:8], "big"),
            int.from_bytes(plaintext[8:], "big"),
        ]
        out = evaluate_kernel(kernel, record)
        assert b"".join(w.to_bytes(8, "big") for w in out) == ciphertext
