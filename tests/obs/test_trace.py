"""Trace recorder: event emission, Chrome trace export/validation, and
the text analysis (heatmap, utilization, diff)."""

from repro.obs import (
    CTL,
    EXEC,
    MEM,
    TRACE,
    TraceRecorder,
    diff_traces,
    load_trace,
    occupancy_heatmap,
    recording,
    subsystems,
    trace_span,
    utilization_table,
    validate_chrome_trace,
)


def small_trace() -> TraceRecorder:
    rec = TraceRecorder()
    rec.label = "unit"
    rec.complete(EXEC, "node 0", "mul", ts=0, dur=3)
    rec.complete(EXEC, "node 1", "add", ts=2, dur=1)
    rec.complete(MEM, "channel row 0", "lmw burst", ts=1, dur=4,
                 args={"words": 6})
    rec.instant(CTL, "block sequencer", "revitalize broadcast", ts=9)
    rec.counter(MEM, "store buffer row 0", "depth", ts=5, value=2.0)
    return rec


class TestRecorder:
    def test_tracks_are_interned(self):
        rec = small_trace()
        doc = rec.to_chrome()
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        exec_events = [e for e in events if e["cat"] == EXEC]
        assert exec_events[0]["pid"] == exec_events[1]["pid"]
        assert exec_events[0]["tid"] != exec_events[1]["tid"]

    def test_metadata_names_every_track(self):
        doc = small_trace().to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert process_names == {EXEC, MEM, CTL}
        assert {"node 0", "node 1", "channel row 0",
                "block sequencer", "store buffer row 0"} <= thread_names

    def test_valid_chrome_document(self):
        doc = small_trace().to_chrome()
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["label"] == "unit"

    def test_save_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace.json"
        small_trace().save(path)
        doc = load_trace(path)
        assert validate_chrome_trace(doc) == []
        assert subsystems(doc) == [EXEC, MEM, CTL]

    def test_clear_resets_events_and_tracks(self):
        rec = small_trace()
        rec.clear()
        assert rec.events == []
        assert rec.to_chrome()["traceEvents"] == []


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_event_list(self):
        assert validate_chrome_trace({"foo": 1}) == [
            "trace document has no 'traceEvents' list"
        ]

    def test_flags_empty_trace(self):
        assert "'traceEvents' is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )

    def test_flags_missing_fields_and_bad_phase(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},  # no name
            {"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},  # bad ph
            {"name": "y", "ph": "X", "pid": 1, "tid": 1, "ts": -1},  # neg ts
        ]}
        errors = "\n".join(validate_chrome_trace(doc))
        assert "missing required field 'name'" in errors
        assert "unknown phase code 'Z'" in errors
        assert "negative ts" in errors
        assert "needs dur >= 0" in errors


class TestAnalysis:
    def test_trace_span_is_last_event_end(self):
        assert trace_span(small_trace().to_chrome()) == 9.0

    def test_heatmap_shape_and_peak(self):
        text = occupancy_heatmap(small_trace().to_chrome(), rows=2, cols=2)
        lines = text.splitlines()
        assert "peak 1 issues/node" in lines[0]
        assert len([l for l in lines if l.startswith("  row ")]) == 2

    def test_heatmap_without_execution_events(self):
        rec = TraceRecorder()
        rec.instant(CTL, "block sequencer", "x", ts=0)
        assert "no execution events" in occupancy_heatmap(rec.to_chrome())

    def test_utilization_aggregates_alu_nodes(self):
        text = utilization_table(small_trace().to_chrome())
        assert "execution (2 nodes)" in text
        assert "memory/channel row 0" in text

    def test_diff_reports_changed_tracks_only(self):
        a, b = small_trace(), small_trace()
        b.complete(EXEC, "node 0", "mul", ts=10, dur=5)
        text = diff_traces(a.to_chrome(), b.to_chrome(),
                           label_a="a", label_b="b")
        assert "execution/node 0" in text
        assert "execution/node 1" not in text

    def test_diff_identical_traces(self):
        doc = small_trace().to_chrome()
        assert "identical track statistics" in diff_traces(doc, doc)


class TestRecordingScope:
    def test_disabled_by_default(self):
        assert TRACE.enabled is False

    def test_scope_clears_labels_and_restores(self):
        TRACE.complete(EXEC, "node 0", "stale", ts=0, dur=1)
        with recording("point/S") as rec:
            assert rec is TRACE
            assert TRACE.enabled is True
            assert rec.events == []
            assert rec.label == "point/S"
            rec.instant(CTL, "block sequencer", "x", ts=0)
        assert TRACE.enabled is False
        assert len(TRACE.events) == 1  # events stay readable after exit
        TRACE.clear()
