"""Opcode semantics: unit checks + property-based 32-bit invariants."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.opcodes import (
    DEFAULT_LATENCY,
    MASK32,
    OPCODES,
    OpClass,
    opcode,
)

words32 = st.integers(min_value=0, max_value=MASK32)
shifts = st.integers(min_value=0, max_value=31)


class TestLookup:
    def test_every_opcode_has_latency_class(self):
        for info in OPCODES.values():
            assert info.opclass in DEFAULT_LATENCY

    def test_unknown_opcode_raises_with_context(self):
        with pytest.raises(KeyError, match="FANCYOP"):
            opcode("FANCYOP")

    def test_arity_matches_semantics(self):
        # Every opcode with a semantic function accepts exactly its arity.
        for info in OPCODES.values():
            if info.semantic is None:
                continue
            args = [1] * info.arity
            if info.opclass in (OpClass.FP_ADD, OpClass.FP_MUL,
                                OpClass.FP_DIV, OpClass.FP_SPECIAL):
                args = [1.0] * info.arity
            info.semantic(*args)  # must not raise

    def test_useful_classification(self):
        assert opcode("FMUL").useful
        assert opcode("ADD").useful
        assert not opcode("MOV").useful
        assert not opcode("GEN").useful
        assert not opcode("FGEN").useful
        assert not opcode("LDI").useful
        assert not opcode("LUT").useful


class TestIntegerSemantics:
    @given(words32, words32)
    def test_add_wraps_to_32_bits(self, a, b):
        result = opcode("ADD").semantic(a, b)
        assert 0 <= result <= MASK32
        assert result == (a + b) % (1 << 32)

    @given(words32, words32)
    def test_sub_wraps_to_32_bits(self, a, b):
        result = opcode("SUB").semantic(a, b)
        assert result == (a - b) % (1 << 32)

    @given(words32, shifts)
    def test_rotl_is_invertible(self, a, s):
        rotl = opcode("ROTL").semantic
        rotated = rotl(a, s)
        assert rotl(rotated, (32 - s) % 32) == a

    @given(words32)
    def test_not_is_involution(self, a):
        n = opcode("NOT").semantic
        assert n(n(a)) == a

    @given(words32, words32)
    def test_xor_self_inverse(self, a, b):
        x = opcode("XOR").semantic
        assert x(x(a, b), b) == a

    @given(words32, shifts)
    def test_shl_shr_consistency(self, a, s):
        shl = opcode("SHL").semantic(a, s)
        assert shl == (a << s) & MASK32
        assert opcode("SHR").semantic(a, s) == (a & MASK32) >> s

    @given(words32, words32)
    def test_select_picks_by_condition(self, a, b):
        sel = opcode("SELECT").semantic
        assert sel(1, a, b) == a
        assert sel(0, a, b) == b


class TestPackUnpack:
    @given(words32, words32)
    def test_pack_then_unpack_roundtrips(self, hi, lo):
        packed = opcode("PACK64").semantic(hi, lo)
        assert opcode("HI32").semantic(packed) == hi
        assert opcode("LO32").semantic(packed) == lo

    def test_hi32_ignores_low_half(self):
        assert opcode("HI32").semantic(0xDEADBEEF_12345678) == 0xDEADBEEF


class TestFloatSemantics:
    def test_division_by_zero_saturates(self):
        assert math.isinf(opcode("FDIV").semantic(1.0, 0.0))
        assert math.isinf(opcode("FRCP").semantic(0.0))

    def test_rsqrt_of_nonpositive_is_infinite(self):
        assert math.isinf(opcode("FRSQRT").semantic(0.0))
        assert math.isinf(opcode("FRSQRT").semantic(-4.0))

    @given(st.floats(min_value=1e-3, max_value=1e3))
    def test_rsqrt_matches_reference(self, x):
        assert opcode("FRSQRT").semantic(x) == pytest.approx(1 / math.sqrt(x))

    def test_pow_clamps_negative_base(self):
        # Shader-style pow: negative bases saturate to zero.
        assert opcode("FPOW").semantic(-2.0, 3.0) == 0.0
        assert opcode("FPOW").semantic(0.0, 0.0) == 1.0

    @given(st.floats(min_value=-100, max_value=100),
           st.floats(min_value=-100, max_value=100))
    def test_fmin_fmax_ordering(self, a, b):
        lo = opcode("FMIN").semantic(a, b)
        hi = opcode("FMAX").semantic(a, b)
        assert lo <= hi
        assert {lo, hi} == {a, b} or lo == hi

    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6))
    def test_fmadd_matches_mul_add(self, a, b, c):
        assert opcode("FMADD").semantic(a, b, c) == a * b + c

    def test_fsel_threshold_is_strictly_positive(self):
        fsel = opcode("FSEL").semantic
        assert fsel(0.5, 1.0, 2.0) == 1.0
        assert fsel(0.0, 1.0, 2.0) == 2.0
        assert fsel(-0.5, 1.0, 2.0) == 2.0
