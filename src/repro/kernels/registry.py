"""Benchmark registry — the paper's Table 1 suite with Table 2 ground truth.

Each entry bundles the kernel generator, its workload generator, its
independent per-record reference, and the attribute row the paper
reports, so the characterization experiments can print measured-vs-paper
side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..isa import Domain, Kernel
from . import (
    anisotropic,
    blowfish,
    convert,
    dct,
    fft,
    fragment_reflection,
    fragment_simple,
    highpass,
    lu,
    md5,
    rijndael,
    vertex_reflection,
    vertex_simple,
    vertex_skinning,
)

Number = Union[int, float]


@dataclass(frozen=True)
class PaperAttributes:
    """One row of the paper's Table 2."""

    instructions: int
    ilp: float
    record_read: int
    record_write: int
    irregular: int
    constants: int
    indexed_constants: int
    loop_bound: Optional[str]  # None, "16", "10", "Variable"


@dataclass(frozen=True)
class KernelSpec:
    """A benchmark: builders, workload, reference and paper ground truth."""

    name: str
    domain: Domain
    description: str
    build: Callable[[], Kernel]
    workload: Callable[..., List[List[Number]]]
    reference: Callable[[Sequence[Number]], List[Number]]
    paper: PaperAttributes
    #: whether results are floating point (compare with tolerance)
    floating: bool = True
    #: the paper excludes anisotropic-filtering from performance results
    in_performance_suite: bool = True

    def kernel(self) -> Kernel:
        return _cached_kernel(self.name)


def _spec(module, paper: PaperAttributes, floating: bool = True,
          in_performance_suite: bool = True) -> KernelSpec:
    kernel = module.build_kernel()  # build once to harvest metadata
    return KernelSpec(
        name=kernel.name,
        domain=kernel.domain,
        description=kernel.description,
        build=module.build_kernel,
        workload=module.workload,
        reference=module.reference,
        paper=paper,
        floating=floating,
        in_performance_suite=in_performance_suite,
    )


def _build_registry() -> Dict[str, KernelSpec]:
    rows: List[Tuple[object, PaperAttributes, bool, bool]] = [
        (convert, PaperAttributes(15, 5.0, 3, 3, 0, 9, 0, None), True, True),
        (dct, PaperAttributes(1728, 6.0, 64, 64, 0, 10, 0, "16"), True, True),
        (highpass, PaperAttributes(17, 3.4, 9, 1, 0, 9, 0, None), True, True),
        (fft, PaperAttributes(10, 3.3, 6, 4, 0, 0, 0, None), True, True),
        (lu, PaperAttributes(2, 1.0, 2, 1, 0, 0, 0, None), True, True),
        (md5, PaperAttributes(680, 1.63, 10, 2, 0, 65, 0, None), False, True),
        (blowfish, PaperAttributes(364, 1.98, 1, 1, 0, 2, 256, "16"), False, True),
        (rijndael, PaperAttributes(650, 11.8, 2, 2, 0, 18, 1024, "10"), False, True),
        (vertex_simple,
         PaperAttributes(95, 4.3, 7, 6, 0, 32, 0, None), True, True),
        (fragment_simple,
         PaperAttributes(64, 2.96, 8, 4, 4, 16, 0, None), True, True),
        (vertex_reflection,
         PaperAttributes(94, 7.1, 9, 2, 0, 35, 0, None), True, True),
        (fragment_reflection,
         PaperAttributes(98, 6.2, 5, 3, 4, 7, 0, None), True, True),
        (vertex_skinning,
         PaperAttributes(112, 6.8, 16, 9, 0, 32, 288, "Variable"), True, True),
        (anisotropic,
         PaperAttributes(80, 2.1, 9, 1, 50, 6, 128, "Variable"), True, False),
    ]
    registry: Dict[str, KernelSpec] = {}
    for module, paper, floating, in_perf in rows:
        spec = _spec(module, paper, floating, in_perf)
        registry[spec.name] = spec
    return registry


_REGISTRY: Optional[Dict[str, KernelSpec]] = None


def registry() -> Dict[str, KernelSpec]:
    """The benchmark registry, built once and cached."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


@lru_cache(maxsize=None)
def _cached_kernel(name: str) -> Kernel:
    return registry()[name].build()


def all_specs(performance_only: bool = False) -> List[KernelSpec]:
    """All benchmark specs (optionally only the performance suite)."""
    specs = list(registry().values())
    if performance_only:
        specs = [s for s in specs if s.in_performance_suite]
    return specs


def spec(name: str) -> KernelSpec:
    """Look up one benchmark spec by Table 1 name."""
    try:
        return registry()[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(registry())}"
        ) from None


def kernel(name: str) -> Kernel:
    """Build (and cache) the named benchmark's kernel."""
    return _cached_kernel(name)


#: Names grouped by domain, in the paper's Table 1 order.
TABLE1_ORDER = (
    "convert", "dct", "highpassfilter",
    "fft", "lu",
    "md5", "rijndael", "blowfish",
    "vertex-simple", "fragment-simple", "vertex-reflection",
    "fragment-reflection", "vertex-skinning", "anisotropic-filter",
)
