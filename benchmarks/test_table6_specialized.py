"""Benchmark: regenerate Table 6 (TRIPS vs specialized hardware).

The TRIPS side is measured on our simulator (best configuration per
benchmark, clock-normalized per row); the specialized side is the
paper's published numbers.  Shape assertions follow Section 5.4's
narrative: crypto beats CryptoManiac by an order of magnitude, Tarantula
beats TRIPS on the scientific codes by about 2x, the QuadroFX wins
fragments by a large factor, and TRIPS wins vertex shading.
"""

from repro.harness.experiments import ExperimentContext, table6


def test_table6_specialized(one_shot):
    result = one_shot(lambda: table6(ExperimentContext()))
    rows = {r.row.benchmark: r for r in result.results}

    # "TRIPS S-O and S-O-D configurations perform an order of magnitude
    # better than specialized hardware" on the network codes.
    assert rows["blowfish"].vs_specialized > 5
    assert rows["rijndael"].vs_specialized > 5

    # "the TRIPS S configuration is ... about a factor of two worse than
    # the Tarantula architecture."
    assert 0.15 < rows["fft"].vs_specialized < 0.9
    assert 0.15 < rows["lu"].vs_specialized < 0.9

    # "On fragment-simple ... the specialized hardware outperforms TRIPS
    # by roughly 8X."
    assert rows["fragment-simple"].vs_specialized < 0.4

    # "In the vertex-simple graphics application, TRIPS outperforms the
    # dedicated hardware."
    assert rows["vertex-simple"].vs_specialized > 1.0

    # dct: the paper's TRIPS is ~4x Imagine; accept 2x-6x.
    assert 2.0 < rows["dct"].vs_specialized < 6.0

    print()
    print(result.render())
