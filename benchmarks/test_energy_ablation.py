"""Ablation: energy per record across configurations (Section 7 direction).

The paper's mechanisms are motivated by power as much as performance
(avoided refetch, avoided register-file traffic, avoided L1 lookups).
This ablation quantifies that with the first-order energy model: for
each domain representative, the configuration the paper prefers is also
at (or near) the energy minimum.
"""

from repro.analysis import estimate_energy
from repro.harness.experiments import PAPER_PREFERRED
from repro.kernels import spec
from repro.machine import GridProcessor, MachineConfig, TABLE5_CONFIGS

KERNELS = ("convert", "fft", "blowfish", "vertex-skinning")


def run_energy_sweep():
    processor = GridProcessor()
    table = {}
    for name in KERNELS:
        s = spec(name)
        kernel = s.kernel()
        records = s.workload(1024 if len(kernel) < 600 else 256)
        per_config = {}
        for config in [MachineConfig.baseline()] + list(TABLE5_CONFIGS):
            if not processor.supports(kernel, config):
                continue
            result = processor.run(kernel, records, config)
            per_config[config.name] = estimate_energy(kernel, result, config)
        table[name] = per_config
    return table


def test_energy_ablation(one_shot):
    table = one_shot(run_energy_sweep)

    for name, per_config in table.items():
        base = per_config["baseline"].pj_per_record
        preferred = PAPER_PREFERRED[name]
        best = min(per_config, key=lambda c: per_config[c].pj_per_record)

        # Every DLP morph saves energy over the ILP baseline.
        for cname, breakdown in per_config.items():
            if cname != "baseline":
                assert breakdown.pj_per_record < base, (name, cname)

        # The paper-preferred configuration is within 25% of the energy
        # minimum (performance preference and energy preference align).
        assert (per_config[preferred].pj_per_record
                <= 1.25 * per_config[best].pj_per_record), (name, best)

    print()
    for name, per_config in table.items():
        row = "  ".join(
            f"{c}={b.pj_per_record:,.0f}"
            for c, b in sorted(per_config.items())
        )
        print(f"{name:18s} pJ/record: {row}")
