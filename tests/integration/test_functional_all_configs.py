"""Functional execution through the processor for the whole suite.

For every benchmark and every machine configuration the kernel fits,
running with ``functional=True`` must return outputs identical to the
independent per-record reference — the machine may never change the
answer, only the cycle count.
"""

import pytest

from repro.kernels import all_specs
from repro.machine import GridProcessor, MachineConfig, TABLE5_CONFIGS

CONFIGS = [MachineConfig.baseline()] + list(TABLE5_CONFIGS)


@pytest.fixture(scope="module")
def proc():
    return GridProcessor()


@pytest.mark.parametrize("s", all_specs(), ids=lambda s: s.name)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_functional_outputs_match_reference(proc, s, config):
    kernel = s.kernel()
    if not proc.supports(kernel, config):
        pytest.skip(f"{s.name} does not fit {config.name}")
    records = s.workload(6)
    result = proc.run(kernel, records, config, functional=True)
    assert result.outputs is not None
    for record, out in zip(records, result.outputs):
        expected = s.reference(record)
        if s.floating:
            assert out == pytest.approx(expected, rel=1e-9, abs=1e-9)
        else:
            assert out == expected
