"""Image-domain workloads (multimedia kernels).

Records follow Table 2: ``convert`` reads 3 words (R, G, B) per pixel;
``highpassfilter`` reads a 3x3 neighborhood (9 words); ``dct`` reads a
full 8x8 block (64 words).
"""

from __future__ import annotations

import random
from typing import List


def rgb_pixels(count: int, seed: int = 7) -> List[List[float]]:
    """``count`` RGB pixel records (components in 0..255)."""
    rng = random.Random(seed)
    return [
        [float(rng.randrange(256)) for _ in range(3)] for _ in range(count)
    ]


def _image(width: int, height: int, seed: int) -> List[List[float]]:
    rng = random.Random(seed)
    # A smooth-ish field (sums of low-frequency terms plus noise) so the
    # filters and DCT see realistic spectra rather than white noise.
    import math

    image = []
    fx = rng.uniform(0.05, 0.2)
    fy = rng.uniform(0.05, 0.2)
    for y in range(height):
        row = []
        for x in range(width):
            value = (
                128.0
                + 80.0 * math.sin(fx * x) * math.cos(fy * y)
                + rng.uniform(-16.0, 16.0)
            )
            row.append(max(0.0, min(255.0, value)))
        image.append(row)
    return image


def neighborhood_records(count: int, seed: int = 11) -> List[List[float]]:
    """``count`` 3x3 neighborhoods (9 words each) from a synthetic image."""
    side = max(8, int(count ** 0.5) + 3)
    image = _image(side, side, seed)
    records = []
    rng = random.Random(seed + 1)
    for _ in range(count):
        x = rng.randrange(1, side - 1)
        y = rng.randrange(1, side - 1)
        records.append(
            [image[y + dy][x + dx] for dy in (-1, 0, 1) for dx in (-1, 0, 1)]
        )
    return records


def image_blocks_8x8(count: int, seed: int = 13) -> List[List[float]]:
    """``count`` 8x8 image blocks (64 words each, row-major)."""
    image = _image(8 * count, 8, seed)
    records = []
    for b in range(count):
        block = []
        for y in range(8):
            block.extend(image[y][8 * b : 8 * b + 8])
        records.append(block)
    return records
