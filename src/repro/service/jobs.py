"""The service job queue: run IDs, worker threads, restartable jobs.

:class:`JobQueue` is the layer between the HTTP API and the scheduler
(:mod:`repro.sched`).  A submission (:class:`~repro.service.spec.SweepSpec`)
becomes a :class:`Job` with a queue-assigned id; ``workers`` background
threads drain the queue (``repro-serve --workers N``), each running its
job as a claim consumer: the job's
:class:`~repro.perf.parallel.SweepPoint` batch becomes PENDING rows of
a claim store — the durable ledger when one is configured — and
:func:`~repro.perf.parallel.run_points` claims, dispatches, and records
them under a :class:`~repro.sched.ClaimSession` wired to the job's
cancel event.

The ledger being the source of truth is what makes jobs *restartable*:
job rows (spec + lifecycle state) and point rows (per-point claims and
results) both live in the database, so a restarted server re-adopts
unfinished jobs on :meth:`JobQueue.start` — DONE points are taken as-is
from their stored results, PENDING and expired-CLAIMED points are
re-claimed and run, and the job completes as if the crash never
happened.  For the same reason an external ``repro-worker`` process
attached to the same ledger can shard a running job's points with the
service's own workers.

Job lifecycle state machine::

    QUEUED ──▶ RUNNING ──▶ DONE
       │          ├──────▶ FAILED
       └──────────┴──────▶ CANCELLED

* ``QUEUED -> CANCELLED``: a ``DELETE`` before a worker picks the
  job up; nothing ever simulates.
* ``RUNNING -> CANCELLED``: the cancel event is a claim-revocation
  trigger — the session releases its claims, revokes the job's
  remaining PENDING rows (so no other worker picks them up), and the
  sweep stops at the next point boundary.  Points already simulated
  stay in the run cache (a resubmission replays them) but the job
  serves no results.
* Terminal states never transition again; cancelling a terminal job
  is a no-op returning False.

Sweeps still parallelize *inside* a job via ``run_points(jobs=N)``;
``workers`` controls how many jobs run concurrently.  Repeat
submissions of an identical spec remain the cheap path: every point
hits the on-disk run cache, so the "sweep" collapses into
ledger-recorded replays.
"""

from __future__ import annotations

import json
import os
import platform
import queue
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..obs.ledger import RunLedger, ledger_to
from ..obs.metrics import METRICS
from ..obs.progress import PROGRESS, tracking
from ..perf.parallel import run_points
from ..sched import ClaimSession, MemoryClaimStore, SweepCancelled
from .spec import SweepSpec, point_rows, result_row


class JobState:
    """Lifecycle states (plain strings — they serialize as-is)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job never leaves.
    TERMINAL = (DONE, FAILED, CANCELLED)


class Job:
    """One submission's mutable record (guarded by the queue's lock)."""

    def __init__(self, job_id: str, spec: SweepSpec,
                 submitted_at: Optional[float] = None):
        self.job_id = job_id
        self.spec = spec
        self.spec_fingerprint = spec.fingerprint()
        self.state = JobState.QUEUED
        self.submitted_at = (
            time.time() if submitted_at is None else submitted_at
        )
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.cancel_event = threading.Event()
        self.points_total = 0
        self.skipped: List[Tuple[str, str]] = []
        #: final progress snapshot (live snapshots come from the session)
        self.progress: Optional[dict] = None
        #: deterministic results payload, set only on DONE
        self.results: Optional[dict] = None
        #: cache-verdict counts for this job's points
        self.cache_counts: Dict[str, int] = {}
        #: the live claim session while RUNNING (None otherwise)
        self.session: Optional[ClaimSession] = None
        #: True when this Job was re-adopted from the ledger on restart
        self.adopted = False


class JobQueue:
    """Accepts sweep specs, runs them on worker threads, serves state.

    ``cache_dir`` is the shared on-disk run cache every job's points
    consult (the cache-hit fast path for repeat submissions);
    ``ledger_path`` the durable ledger database each job's points,
    claim rows and lifecycle records land in; ``jobs`` the per-sweep
    worker-process fan-out passed to :func:`run_points`; ``workers``
    the number of queue worker threads (concurrent jobs).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        ledger_path: Optional[str] = None,
        jobs: int = 1,
        workers: int = 1,
    ):
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.ledger_path = (
            str(ledger_path) if ledger_path is not None else None
        )
        self.jobs = max(1, int(jobs))
        self.workers = max(1, int(workers))
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._ledger = (
            RunLedger(self.ledger_path)
            if self.ledger_path is not None else None
        )
        self._recovered = False
        # The ledger/progress global scopes are process-wide; with
        # N workers they are entered once by the first running job and
        # left by the last, so one job finishing can never disable
        # them under a sibling still running.
        self._scope_lock = threading.Lock()
        self._scope_depth = 0
        self._scope_cms: list = []

    # ---- lifecycle ----------------------------------------------------------

    def start(self) -> "JobQueue":
        """Start the worker threads (idempotent); adopt unfinished jobs.

        With a ledger configured, the first start re-enqueues every
        job the database still records as QUEUED or RUNNING — the
        restart-resume path: their claim rows are still there, so DONE
        points replay from their stored results and only the remainder
        simulates.
        """
        self._recover()
        self._stop.clear()
        self._threads = [t for t in self._threads if t.is_alive()]
        for index in range(len(self._threads), self.workers):
            thread = threading.Thread(
                target=self._work,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop draining the queue; optionally join the workers."""
        self._stop.set()
        for _ in range(max(1, len(self._threads))):
            self._queue.put(None)  # wake blocked workers
        if wait:
            deadline = time.monotonic() + timeout
            for thread in self._threads:
                if thread.is_alive():
                    thread.join(
                        timeout=max(0.0, deadline - time.monotonic())
                    )

    def _recover(self) -> None:
        """Re-adopt QUEUED/RUNNING jobs from the ledger (once)."""
        if self._ledger is None or self._recovered:
            self._recovered = True
            return
        self._recovered = True
        try:
            rows = self._ledger.job_rows(
                states=(JobState.QUEUED, JobState.RUNNING)
            )
        except Exception:
            return
        for row in rows:
            try:
                spec = SweepSpec.from_dict(json.loads(row["spec"]))
            except (ValueError, TypeError, KeyError):
                continue  # unparseable legacy row: leave it be
            job = Job(
                row["job_id"], spec, submitted_at=row.get("submitted_at")
            )
            job.adopted = True
            with self._lock:
                if job.job_id in self._jobs:
                    continue
                self._jobs[job.job_id] = job
            self._persist(job)
            self._queue.put(job.job_id)
            if METRICS.enabled:
                METRICS.inc("service.jobs.adopted")

    # ---- submission / control ----------------------------------------------

    def submit(self, spec: SweepSpec) -> Job:
        """Enqueue one sweep; returns its :class:`Job` immediately."""
        job = Job(uuid.uuid4().hex, spec)
        with self._lock:
            self._jobs[job.job_id] = job
        self._persist(job)
        self._queue.put(job.job_id)
        if METRICS.enabled:
            METRICS.inc("service.jobs.submitted")
        return job

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job was still cancellable.

        A queued job is cancelled on the spot; a running job's cancel
        event revokes its claims at the next point boundary.  Terminal
        jobs return False.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.state in JobState.TERMINAL:
                return False
            job.cancel_event.set()
            if job.state == JobState.QUEUED:
                self._finish(job, JobState.CANCELLED)
        self._persist(job)
        if METRICS.enabled:
            METRICS.inc("service.jobs.cancel_requested")
        return True

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job

    def job_ids(self) -> List[str]:
        """Submission order is not preserved; sort by submit stamp."""
        with self._lock:
            jobs = list(self._jobs.values())
        jobs.sort(key=lambda j: (j.submitted_at, j.job_id))
        return [j.job_id for j in jobs]

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (the ``/healthz`` summary)."""
        with self._lock:
            jobs = list(self._jobs.values())
        counts: Dict[str, int] = {}
        for job in jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        return dict(sorted(counts.items()))

    # ---- views --------------------------------------------------------------

    def status(self, job_id: str) -> dict:
        """The ``GET /jobs/{id}`` document for one job.

        While the job runs, ``progress`` is composed from its claim
        session's store — per-point rows with durable claim state — so
        the snapshot is correct even with several jobs running and
        external workers sharding the sweep.
        """
        job = self.get(job_id)
        with self._lock:
            state = job.state
            progress = job.progress
            if state == JobState.RUNNING:
                session = job.session
                if session is not None:
                    progress = session.progress_snapshot(job.started_at)
                else:
                    progress = self._live_progress(job)
            doc = {
                "job_id": job.job_id,
                "state": state,
                "spec": job.spec.to_dict(),
                "spec_fingerprint": job.spec_fingerprint,
                "submitted_at": job.submitted_at,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "duration_seconds": (
                    job.finished_at - job.started_at
                    if job.finished_at is not None
                    and job.started_at is not None else None
                ),
                "points_total": job.points_total,
                "skipped": [list(pair) for pair in job.skipped],
                "error": job.error,
                "progress": progress,
                "cache": dict(job.cache_counts),
            }
        return doc

    def _live_progress(self, job: Job) -> dict:
        state = PROGRESS.get_current_state()
        total = max(job.points_total, state["completed"])
        remaining = max(0, total - state["completed"])
        rate = state["points_per_second"]
        state["total"] = total
        state["eta_seconds"] = remaining / rate if rate > 0 else None
        return state

    def results(self, job_id: str) -> dict:
        """The deterministic results payload of a DONE job.

        Raises :class:`KeyError` for unknown ids and
        :class:`LookupError` while the job is not (or never will be)
        done — the HTTP layer maps these to 404/409.
        """
        job = self.get(job_id)
        with self._lock:
            if job.state != JobState.DONE or job.results is None:
                raise LookupError(
                    f"job {job_id} has no results (state: {job.state})"
                )
            return job.results

    def results_page(self, job_id: str, offset: int = 0) -> dict:
        """One ``GET /jobs/{id}/results?offset=N`` page.

        Streams the completed prefix of a *running* job straight from
        its claim rows (rows are served in point order, so the pages a
        client accumulates concatenate into exactly the final
        ``rows``), and slices the final payload once the job is DONE.
        ``next_offset`` is where the client should poll next;
        ``complete`` tells it when to stop.

        Raises :class:`LookupError` (409) for FAILED/CANCELLED jobs —
        same contract as :meth:`results`.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        job = self.get(job_id)
        with self._lock:
            state = job.state
            session = job.session
            if state == JobState.DONE and job.results is not None:
                rows = job.results["rows"]
                page = rows[offset:]
                return {
                    "job_id": job.job_id,
                    "state": state,
                    "total": len(rows),
                    "offset": offset,
                    "next_offset": len(rows),
                    "complete": True,
                    "rows": page,
                }
            if state in JobState.TERMINAL:
                raise LookupError(
                    f"job {job_id} has no results (state: {state})"
                )
            total = job.points_total
        # QUEUED or RUNNING: serve the contiguous done-prefix.
        rows: List[dict] = []
        done_prefix = 0
        if session is not None:
            try:
                point_rows_ = session.store.point_rows(
                    job_id, with_result=True
                )
            except Exception:
                point_rows_ = []
            by_seq = {row["seq"]: row for row in point_rows_}
            while True:
                row = by_seq.get(done_prefix)
                if row is None or row["status"] != "done":
                    break
                done_prefix += 1
                if done_prefix > offset:
                    payload = session.payload_from_row(row)
                    rows.append(result_row(job.spec.backend, payload))
        return {
            "job_id": job.job_id,
            "state": state,
            "total": total,
            "offset": offset,
            "next_offset": max(offset, done_prefix),
            "complete": False,
            "rows": rows,
        }

    # ---- the workers --------------------------------------------------------

    def _work(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if job_id is None:  # shutdown sentinel
                continue
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != JobState.QUEUED:
                    continue  # cancelled while queued, or stale
                job.state = JobState.RUNNING
                job.started_at = time.time()
            self._persist(job)
            try:
                self._run_job(job)
            except Exception as exc:  # the queue must survive any job
                with self._lock:
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.session = None
                    self._finish(job, JobState.FAILED)
                self._persist(job)

    @contextmanager
    def _global_scopes(self):
        """Process-global ledger/progress scoping, refcounted.

        ``ledger_to`` and ``tracking`` flip process-wide state; with
        ``workers > 1`` a naive per-job ``with`` would restore it when
        the *first* job finishes, silently disabling the ledger and
        tracker under every job still running.  The refcount enters
        the scopes with the first running job and exits with the last.
        """
        with self._scope_lock:
            self._scope_depth += 1
            if self._scope_depth == 1:
                cms = []
                if self.ledger_path is not None:
                    cms.append(ledger_to(self.ledger_path))
                cms.append(tracking())
                for cm in cms:
                    cm.__enter__()
                self._scope_cms = cms
        try:
            yield
        finally:
            with self._scope_lock:
                self._scope_depth -= 1
                if self._scope_depth == 0:
                    cms, self._scope_cms = self._scope_cms, []
                    for cm in reversed(cms):
                        cm.__exit__(None, None, None)

    def _session_for(self, job: Job) -> ClaimSession:
        store = self._ledger if self._ledger is not None else (
            MemoryClaimStore()
        )
        worker_id = (
            f"{platform.node()}:{os.getpid()}:"
            f"{threading.current_thread().name}"
        )
        return ClaimSession(
            store,
            job_id=job.job_id,
            worker_id=worker_id,
            cancel_check=lambda: (
                job.cancel_event.is_set() or self._stop.is_set()
            ),
        )

    def _run_job(self, job: Job) -> None:
        points, skipped = job.spec.build_points(
            cache_dir=self.cache_dir, ledger_path=self.ledger_path
        )
        with self._lock:
            job.points_total = len(points)
            job.skipped = skipped
        session = self._session_for(job)
        with self._lock:
            job.session = session
        cancelled: Optional[SweepCancelled] = None
        results: list = []
        try:
            with self._global_scopes():
                try:
                    results = run_points(
                        points, jobs=self.jobs, session=session
                    )
                except SweepCancelled as exc:
                    cancelled = exc
            snapshot = session.progress_snapshot(job.started_at)
            cache_counts = self._cache_counts(job, session)
        finally:
            with self._lock:
                job.session = None
            session.close()
        with self._lock:
            job.progress = snapshot
            job.cache_counts = cache_counts
            if cancelled is not None:
                job.error = str(cancelled)
                self._finish(job, JobState.CANCELLED)
            else:
                job.results = {
                    "spec_fingerprint": job.spec_fingerprint,
                    "backend": job.spec.backend,
                    "num_points": len(points),
                    "skipped": [list(pair) for pair in skipped],
                    "rows": point_rows(points, results),
                }
                self._finish(job, JobState.DONE)
        self._persist(job)
        if cancelled is None and METRICS.enabled:
            METRICS.inc("service.points.simulated", len(points))
            hits = job.cache_counts.get("hit", 0)
            if hits:
                METRICS.inc("service.cache_hits", hits)

    def _finish(self, job: Job, state: str) -> None:
        """Terminal transition (caller holds the lock)."""
        job.state = state
        job.finished_at = time.time()
        if METRICS.enabled:
            METRICS.inc(f"service.jobs.{state}")

    def _persist(self, job: Job) -> None:
        """Mirror the job's lifecycle row into the ledger (best effort)."""
        if self._ledger is None:
            return
        try:
            self._ledger.upsert_job({
                "job_id": job.job_id,
                "spec": json.dumps(job.spec.to_dict(), sort_keys=True),
                "source": "service",
                "state": job.state,
                "submitted_at": job.submitted_at,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "error": job.error,
                "points_total": job.points_total,
            })
        except Exception:
            pass  # lifecycle mirroring must never fail a request

    def _cache_counts(
        self, job: Job, session: ClaimSession
    ) -> Dict[str, int]:
        """Cache-verdict counts for one job's points.

        The claim rows carry per-point verdicts when the serial
        consumer (or an external worker) ran them; when every point
        has one, that *is* the job's account.  Pool-dispatched points
        carry no verdict, so the ledger's runs-table window is the
        fallback.  Returns {} when nothing is available — accounting
        must never fail a job.
        """
        try:
            verdicts = session.cache_verdicts()
        except Exception:
            verdicts = {}
        if job.points_total and (
            sum(verdicts.values()) >= job.points_total
        ):
            return verdicts
        if self.ledger_path is None or job.started_at is None:
            return verdicts or {}
        try:
            return RunLedger(self.ledger_path).cache_counts(
                since=job.started_at
            )
        except Exception:
            return verdicts or {}


__all__ = ["Job", "JobQueue", "JobState"]
