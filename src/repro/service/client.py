"""Thin HTTP client for the service API (urllib-only, no dependency).

:class:`ServiceClient` is what the tests and the ``repro-submit`` CLI
drive the server with.  Every method returns the decoded JSON
document; :meth:`ServiceClient.results_bytes` additionally returns the
raw payload bytes, because the service's contract is *byte-identical*
results for identical specs and the tests assert exactly that.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional, Tuple

from .jobs import JobState


class ServiceError(RuntimeError):
    """An API-level error (non-2xx with a JSON error document)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """One service endpoint (``http://host:port``), request helpers."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ---- plumbing -----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, bytes]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as rsp:
                return rsp.status, rsp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace") or exc.reason
            raise ServiceError(exc.code, message) from None

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        _, raw = self._request(method, path, body)
        return json.loads(raw.decode("utf-8"))

    # ---- API ----------------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """POST the spec; returns the acceptance doc (``job_id``, urls)."""
        return self._json("POST", "/jobs", body=spec)

    def jobs(self) -> dict:
        return self._json("GET", "/jobs")

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def results(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}/results")

    def results_bytes(self, job_id: str) -> bytes:
        """The raw results payload (the byte-identity contract)."""
        _, raw = self._request("GET", f"/jobs/{job_id}/results")
        return raw

    def results_page(self, job_id: str, offset: int = 0) -> dict:
        """One incremental results page (streams a running job).

        Returns the completed points from ``offset`` on, with
        ``next_offset`` (poll from here next) and ``complete`` (True
        once the page came from the final DONE payload).
        """
        return self._json(
            "GET", f"/jobs/{job_id}/results?offset={int(offset)}"
        )

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.05,
    ) -> dict:
        """Poll ``GET /jobs/{id}`` until the job reaches a terminal state.

        Returns the final status document; raises :class:`TimeoutError`
        if the job is still queued/running when the deadline passes.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in JobState.TERMINAL:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_interval)


__all__ = ["ServiceClient", "ServiceError"]
