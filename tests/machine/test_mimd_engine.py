"""MIMD engine: functional equivalence, capacity limits, control skipping."""

import pytest

from repro.isa import evaluate_kernel
from repro.kernels import spec
from repro.machine import (
    MachineConfig,
    MachineParams,
    MimdCapacityError,
    MimdEngine,
    rolled_instruction_count,
)
from repro.machine.mimd_engine import check_capacity
from repro.memory import MemorySystem


def engine_for(name, config, params=None, functional=False):
    params = params or MachineParams()
    memory = MemorySystem(params.rows, params.memory_timings())
    memory.configure_smc(True)
    kernel = spec(name).kernel()
    return MimdEngine(kernel, config, params, memory, functional=functional)


class TestFunctionalExecution:
    @pytest.mark.parametrize("name", ["blowfish", "md5", "rijndael"])
    def test_crypto_outputs_bit_exact(self, name):
        s = spec(name)
        records = s.workload(16)
        engine = engine_for(name, MachineConfig.M_D() if s.kernel().tables
                            else MachineConfig.M(), functional=True)
        result = engine.run(records)
        for record, out in zip(records, result.outputs):
            assert out == s.reference(record)

    def test_variable_loop_outputs_match_evaluator(self):
        s = spec("vertex-skinning")
        records = s.workload(12)
        engine = engine_for("vertex-skinning", MachineConfig.M_D(),
                            functional=True)
        result = engine.run(records)
        for record, out in zip(records, result.outputs):
            assert out == pytest.approx(evaluate_kernel(s.kernel(), record))


class TestControlSkipping:
    def test_dead_iterations_not_charged(self):
        """A 1-bone vertex must run faster than a 4-bone vertex."""
        s = spec("vertex-skinning")
        base = s.workload(1)[0]
        light = list(base)
        light[14] = 1.0
        heavy = list(base)
        heavy[14] = 4.0
        e_light = engine_for("vertex-skinning", MachineConfig.M_D())
        e_heavy = engine_for("vertex-skinning", MachineConfig.M_D())
        t_light = e_light.run([light]).cycles
        t_heavy = e_heavy.run([heavy]).cycles
        assert t_light < t_heavy

    def test_useful_ops_counts_live_work_only(self):
        s = spec("vertex-skinning")
        record = list(s.workload(1)[0])
        record[14] = 2.0
        engine = engine_for("vertex-skinning", MachineConfig.M_D())
        result = engine.run([record])
        assert result.useful_ops == s.kernel().useful_ops_live(2)

    def test_skipped_instruction_stat(self):
        record = list(spec("vertex-skinning").workload(1)[0])
        record[14] = 1.0
        engine = engine_for("vertex-skinning", MachineConfig.M_D())
        engine.run([record])
        assert engine.stats.instructions_skipped > 0


class TestCapacity:
    def test_rolled_count_uses_loop_structure(self):
        dct = spec("dct").kernel()
        assert rolled_instruction_count(dct) == -(-len(dct.body) // 16)
        skin = spec("vertex-skinning").kernel()
        assert rolled_instruction_count(skin) < len(skin.body)

    def test_istore_capacity_enforced(self):
        params = MachineParams(l0_inst_capacity=32)
        with pytest.raises(MimdCapacityError, match="instruction store"):
            check_capacity(spec("md5").kernel(), MachineConfig.M(), params)

    def test_l0_data_capacity_enforced(self):
        params = MachineParams(l0_data_bytes=256)
        with pytest.raises(MimdCapacityError, match="data store"):
            check_capacity(
                spec("blowfish").kernel(), MachineConfig.M_D(), params
            )

    def test_non_mimd_config_rejected(self):
        params = MachineParams()
        memory = MemorySystem(params.rows, params.memory_timings())
        with pytest.raises(ValueError, match="not a MIMD"):
            MimdEngine(spec("fft").kernel(), MachineConfig.S(), params, memory)


class TestTimingShape:
    def test_nodes_share_work_round_robin(self):
        """2x the records on a full grid costs about 2x the cycles."""
        s = spec("fft")
        params = MachineParams()
        e1 = engine_for("fft", MachineConfig.M(), params)
        e2 = engine_for("fft", MachineConfig.M(), params)
        t64 = e1.run(s.workload(64)).cycles
        t128 = e2.run(s.workload(128)).cycles
        assert t128 > t64
        assert t128 < 2.6 * t64

    def test_l0_lookup_beats_remote_l1(self):
        """M-D's local tables beat plain M's mesh-routed L1 lookups."""
        s = spec("blowfish")
        records = s.workload(64)
        m = engine_for("blowfish", MachineConfig.M())
        md = engine_for("blowfish", MachineConfig.M_D())
        assert md.run(records).cycles < m.run(records).cycles
