"""Shared state for the benchmark suite.

Every paper table/figure has one benchmark module that (a) times the
regeneration with pytest-benchmark and (b) asserts the reproduced shape,
then prints the rendered rows (run with ``-s`` to see them).
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import ExperimentContext


def pytest_configure(config):
    # The benchmark suite lives outside testpaths; make sure bare
    # ``pytest benchmarks/`` runs use the same options as tests.
    pass


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """One shared simulation cache across every benchmark module."""
    return ExperimentContext(records=512, large_kernel_records=128)


@pytest.fixture
def one_shot(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return run
