"""Network/security workloads: 1500-byte packets and their block streams.

The paper processes "1500 byte packets" (Table 1).  A packet is chopped
into the block sizes the ciphers/digests consume: 64-bit blocks for
Blowfish, 128-bit blocks for Rijndael, 512-bit blocks for MD5.  Records
carry the blocks packed into 64-bit words, matching Table 2's record
sizes (blowfish 1/1, rijndael 2/2, md5 10/2 — message block plus chaining
state).
"""

from __future__ import annotations

import random
from typing import List

PACKET_BYTES = 1500


def packet_stream(count: int, seed: int = 23) -> List[bytes]:
    """``count`` random 1500-byte packets."""
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(PACKET_BYTES)) for _ in range(count)]


def _pad_to(data: bytes, multiple: int) -> bytes:
    if len(data) % multiple:
        data += b"\x00" * (multiple - len(data) % multiple)
    return data


def _words_be(data: bytes) -> List[int]:
    """Pack bytes into big-endian 64-bit words."""
    return [
        int.from_bytes(data[i : i + 8], "big") for i in range(0, len(data), 8)
    ]


def packet_block_records(
    packets: List[bytes], block_bytes: int, limit: int = 0
) -> List[List[int]]:
    """Chop packets into cipher blocks packed as 64-bit-word records.

    ``block_bytes`` is 8 for Blowfish (1-word records) and 16 for
    Rijndael (2-word records).  ``limit`` truncates the stream (0 = all).
    """
    if block_bytes % 8:
        raise ValueError("block size must be a whole number of 64-bit words")
    records: List[List[int]] = []
    for packet in packets:
        data = _pad_to(packet, block_bytes)
        for i in range(0, len(data), block_bytes):
            records.append(_words_be(data[i : i + block_bytes]))
            if limit and len(records) >= limit:
                return records
    return records


#: MD5's standard initial chaining state (A, B, C, D), packed two 32-bit
#: halves per record word: word = (first << 32) | second.
MD5_IV_WORDS = [
    (0x67452301 << 32) | 0xEFCDAB89,
    (0x98BADCFE << 32) | 0x10325476,
]


def md5_block_records(
    packets: List[bytes], limit: int = 0, iv: List[int] = None
) -> List[List[int]]:
    """512-bit MD5 message blocks with chaining state: 10-word records.

    Record layout: 8 words of message (each packing two little-endian
    32-bit message words, first in the high half) followed by 2 words of
    chaining state.  Each record is independent (the data-parallel
    formulation digests blocks from many packets concurrently, as in
    per-packet checksums).
    """
    state = iv or MD5_IV_WORDS
    records: List[List[int]] = []
    for packet in packets:
        data = _pad_to(packet, 64)
        for i in range(0, len(data), 64):
            chunk = data[i : i + 64]
            message_words = []
            for j in range(0, 64, 8):
                lo = int.from_bytes(chunk[j : j + 4], "little")
                hi = int.from_bytes(chunk[j + 4 : j + 8], "little")
                message_words.append((lo << 32) | hi)
            records.append(message_words + list(state))
            if limit and len(records) >= limit:
                return records
    return records
