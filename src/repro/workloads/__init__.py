"""Seeded synthetic workload generators for the benchmark suite.

The paper's experiments run each kernel over streams of records drawn
from its domain (image blocks, 1500-byte packets, matrix rows, vertex and
fragment streams).  These generators produce deterministic, seeded
equivalents with the shapes the paper states, so every experiment is
reproducible bit for bit.
"""

from .images import image_blocks_8x8, neighborhood_records, rgb_pixels
from .matrices import butterfly_records, fft_input, lu_matrix, lu_update_records
from .packets import md5_block_records, packet_block_records, packet_stream
from .graphics import (
    fragment_records,
    reflection_fragment_records,
    reflection_vertex_records,
    skinning_records,
    vertex_records,
    anisotropic_records,
)

__all__ = [
    "rgb_pixels",
    "image_blocks_8x8",
    "neighborhood_records",
    "fft_input",
    "butterfly_records",
    "lu_matrix",
    "lu_update_records",
    "packet_stream",
    "packet_block_records",
    "md5_block_records",
    "vertex_records",
    "fragment_records",
    "reflection_vertex_records",
    "reflection_fragment_records",
    "skinning_records",
    "anisotropic_records",
]
