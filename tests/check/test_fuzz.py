"""Differential fuzz harness: clean trees fuzz clean, seeded bugs are
detected and shrunk, corpora round-trip and replay."""

import dataclasses
import json

from repro.check.fuzz import (
    FuzzCase,
    FuzzFailure,
    case_from_seed,
    check_case,
    load_case,
    replay_corpus,
    run_fuzz,
    save_failure,
    shrink_case,
)
from repro.memory.storebuffer import StoreBuffer


def _lifo_evict(self):
    """The re-broken eviction: newest pending line instead of oldest."""
    pending = self._pending_lines
    newest = next(reversed(pending))
    return pending.pop(newest)


class TestCleanTree:
    def test_small_budget_finds_nothing(self):
        assert run_fuzz(8) == []

    def test_single_case_checks_clean(self):
        assert check_case(case_from_seed(5)) is None


class TestCaseRoundTrip:
    def test_to_from_dict_identity(self):
        case = case_from_seed(42)
        assert FuzzCase.from_dict(case.to_dict()) == case

    def test_from_dict_ignores_unknown_keys(self):
        doc = case_from_seed(3).to_dict()
        doc["added_in_a_future_schema"] = True
        assert FuzzCase.from_dict(doc) == case_from_seed(3)

    def test_schedule_is_deterministic(self):
        assert case_from_seed(9) == case_from_seed(9)
        assert case_from_seed(9) != case_from_seed(10)


class TestSeededBug:
    """ISSUE 4 acceptance: re-break the store-buffer eviction order and
    the fuzzer must detect it and shrink the reproducer."""

    def test_lifo_eviction_detected_shrunk_and_saved(self, monkeypatch,
                                                     tmp_path):
        monkeypatch.setattr(StoreBuffer, "_evict_line", _lifo_evict)
        failures = run_fuzz(6, start_seed=5, corpus_dir=tmp_path)
        assert failures, "re-broken FIFO eviction went undetected"
        failure = failures[0]
        assert failure.stage == "sanitizer"
        assert any("storebuffer.fifo_eviction" in v
                   for v in failure.violations)
        # Shrinking only ever simplifies the case.
        original = case_from_seed(failure.case.seed)
        assert failure.case.size <= original.size
        assert failure.case.records <= original.records
        assert failure.case.iterations <= original.iterations
        # The shrunk reproducer landed in the corpus and still fails.
        saved = sorted(tmp_path.glob("*.json"))
        assert saved
        assert load_case(saved[0]) in {f.case for f in failures}
        assert all(found is not None
                   for _, found in replay_corpus(tmp_path))

    def test_fixed_tree_replays_bug_corpus_clean(self, monkeypatch,
                                                 tmp_path):
        """A corpus captured against the bug replays clean once the bug
        is fixed — exactly the regression-pinning workflow."""
        with monkeypatch.context() as m:
            m.setattr(StoreBuffer, "_evict_line", _lifo_evict)
            failures = run_fuzz(1, start_seed=5, corpus_dir=tmp_path)
        assert failures
        results = replay_corpus(tmp_path)
        assert results and all(found is None for _, found in results)


class TestShrink:
    def test_greedy_shrink_reaches_the_minimal_failing_case(self):
        def check(case):
            if case.size >= 4:
                return FuzzFailure(case, "synthetic", "size too big")
            return None

        start = dataclasses.replace(case_from_seed(1), size=32)
        shrunk = shrink_case(check(start), check=check)
        assert shrunk.case.size == 4        # 3 no longer fails
        assert shrunk.case.records == 1     # everything else minimized too
        assert shrunk.case.table_size == 0

    def test_shrink_respects_check_budget(self):
        calls = {"n": 0}

        def check(case):
            calls["n"] += 1
            return FuzzFailure(case, "synthetic", "always fails")

        start = case_from_seed(0)
        shrink_case(FuzzFailure(start, "synthetic", "x"), check=check,
                    max_checks=5)
        assert calls["n"] <= 5


class TestCorpusFiles:
    def test_save_failure_writes_replayable_json(self, tmp_path):
        failure = FuzzFailure(case_from_seed(12), "dataflow:S-O",
                              "made up", ("v1",))
        path = save_failure(tmp_path, failure)
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["stage"] == "dataflow:S-O"
        assert FuzzCase.from_dict(doc["case"]) == failure.case
        assert ":" not in path.name  # stage slug is filesystem-safe
