"""Durable run ledger: one sqlite row per dispatched simulation point.

The metrics registry and trace recorder observe a single process and
evaporate at exit.  The ledger is the durable complement: every run
that crosses :func:`repro.backends.dispatch` (and every cache hit a
sweep worker replays) appends one row to a sqlite database, so "what
was simulated, where, how long did each phase take, and what did the
metrics say" survives the process — the substrate the service layer's
run IDs and the distributed claim-and-run store build on.

Design points:

* **Near-zero cost when disabled.**  Like
  :data:`~repro.perf.phases.PHASES`, the global :data:`LEDGER` is an
  explicitly-enabled instrument: instrumented sites guard with
  ``if LEDGER.enabled:`` and pay one attribute test when it is off
  (the default).  It turns on when the ``REPRO_LEDGER`` environment
  variable names a database path, or via :meth:`LedgerHandle.configure`
  (the CLIs do this for their ``--ledger`` flags, default-on).
* **Safe for concurrent pool workers.**  The database runs in WAL
  mode with a busy timeout; every process (and thread) appends through
  its own connection in one short autocommitted ``INSERT`` — sqlite
  serializes the writers.  Worker processes inherit ``REPRO_LEDGER``
  through the environment and :class:`~repro.perf.parallel.SweepPoint`
  carries the path explicitly, so fan-out records exactly like the
  serial loop.
* **Self-describing rows.**  Each row carries the run's content
  fingerprint, backend and engine core, kernel/config/params, a
  per-phase timing breakdown, the metrics snapshot from
  ``RunResult.detail`` (JSON, sorted keys — byte-stable), the cache
  verdict (``hit``/``miss``/``uncached``), the sanitizer verdict,
  host/pid/git-SHA provenance and wall seconds.

``repro-perf`` (:mod:`repro.obs.perfcli`) reads the ledger back:
``history`` lists rows, ``diff`` compares the phase/metric columns of
two runs.  The schema is versioned (:data:`LEDGER_SCHEMA`) so the
distributed experiment store can extend it compatibly.
"""

from __future__ import annotations

import getpass
import json
import os
import platform
import sqlite3
import subprocess
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

#: Ledger schema version (bump on incompatible table changes).
LEDGER_SCHEMA = 2

#: Environment variable naming the ledger database path; empty or
#: ``0``/``off``/``none`` (any case) leave the ledger disabled.
LEDGER_ENV = "REPRO_LEDGER"

#: Conventional default database filename (what the CLIs use).
DEFAULT_LEDGER = ".repro_ledger.sqlite"

_DISABLED_VALUES = {"", "0", "off", "none", "disabled"}

_TABLE_SQL = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    created_at   REAL NOT NULL,
    host         TEXT,
    "user"       TEXT,
    pid          INTEGER,
    git_sha      TEXT,
    backend      TEXT,
    engine_core  TEXT,
    kernel       TEXT,
    config       TEXT,
    records      INTEGER,
    params       TEXT,
    fingerprint  TEXT,
    cache        TEXT,
    sanitizer    TEXT,
    cycles       INTEGER,
    useful_ops   INTEGER,
    wall_seconds REAL,
    phases       TEXT,
    metrics      TEXT
);
CREATE INDEX IF NOT EXISTS runs_created ON runs (created_at);
CREATE INDEX IF NOT EXISTS runs_point ON runs (kernel, config, backend);
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT);
CREATE TABLE IF NOT EXISTS points (
    job_id       TEXT NOT NULL,
    seq          INTEGER NOT NULL,
    fingerprint  TEXT,
    label        TEXT,
    backend      TEXT,
    status       TEXT NOT NULL DEFAULT 'pending',
    worker       TEXT,
    lease_until  REAL,
    claims       INTEGER NOT NULL DEFAULT 0,
    enqueued_at  REAL,
    finished_at  REAL,
    wall_seconds REAL,
    cache        TEXT,
    error        TEXT,
    spec         TEXT,
    result       TEXT,
    PRIMARY KEY (job_id, seq)
);
CREATE INDEX IF NOT EXISTS points_status ON points (status, job_id);
CREATE INDEX IF NOT EXISTS points_fingerprint ON points (fingerprint);
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    spec         TEXT,
    source       TEXT,
    state        TEXT,
    submitted_at REAL,
    started_at   REAL,
    finished_at  REAL,
    error        TEXT,
    points_total INTEGER
);
"""

#: Point lifecycle states (the claim-and-run state machine).
POINT_PENDING = "pending"
POINT_CLAIMED = "claimed"
POINT_DONE = "done"
POINT_FAILED = "failed"
POINT_CANCELLED = "cancelled"

#: States a point row never leaves.
POINT_TERMINAL = (POINT_DONE, POINT_FAILED, POINT_CANCELLED)

#: Column order of one ``points`` row.
POINT_COLUMNS = (
    "job_id", "seq", "fingerprint", "label", "backend", "status",
    "worker", "lease_until", "claims", "enqueued_at", "finished_at",
    "wall_seconds", "cache", "error", "spec", "result",
)

#: Column order of one ``jobs`` row.
JOB_COLUMNS = (
    "job_id", "spec", "source", "state", "submitted_at", "started_at",
    "finished_at", "error", "points_total",
)

#: Column order of one ``runs`` row (INSERT and SELECT share it).
ROW_COLUMNS = (
    "run_id", "created_at", "host", "user", "pid", "git_sha",
    "backend", "engine_core", "kernel", "config", "records", "params",
    "fingerprint", "cache", "sanitizer", "cycles", "useful_ops",
    "wall_seconds", "phases", "metrics",
)

_GIT_SHA_CACHE: Dict[str, Optional[str]] = {}


def current_git_sha() -> Optional[str]:
    """The working directory's HEAD commit, or None outside a repo.

    Resolved once per (process, cwd) — a subprocess per dispatched
    point would dwarf the insert it annotates.
    """
    cwd = os.getcwd()
    if cwd not in _GIT_SHA_CACHE:
        sha: Optional[str] = None
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=5, cwd=cwd,
            )
            if proc.returncode == 0:
                sha = proc.stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            sha = None
        _GIT_SHA_CACHE[cwd] = sha
    return _GIT_SHA_CACHE[cwd]


def _jsonable(value: Any) -> Any:
    """A JSON-encodable copy: dict keys become strings, odd values reprs.

    Machine parameters carry enum-keyed tables (e.g. per-opcode-class
    latencies); sorted-key JSON needs homogeneous string keys.
    """
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _json_or_none(doc: Optional[Dict[str, Any]]) -> Optional[str]:
    """Sorted-key JSON for a dict column (byte-stable), None passthrough."""
    if doc is None:
        return None
    return json.dumps(_jsonable(doc), sort_keys=True)


class RunLedger:
    """Append/read access to one ledger database file.

    Opens lazily, configures WAL mode + a busy timeout, and creates the
    schema on first use.  One instance is safe to share across threads
    (a lock serializes this process's inserts); concurrent *processes*
    coordinate through sqlite's own WAL locking.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._conn: Optional[sqlite3.Connection] = None
        self._pid = os.getpid()
        self._lock = threading.Lock()

    def _connect(self) -> sqlite3.Connection:
        """The (per-process) connection, reopened after a fork."""
        if self._conn is None or self._pid != os.getpid():
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=30.0, isolation_level=None,
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_TABLE_SQL)
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema", str(LEDGER_SCHEMA)),
            )
            self._conn = conn
            self._pid = os.getpid()
        return self._conn

    def append(self, row: Dict[str, Any]) -> None:
        """Insert one run row (missing columns default to None)."""
        values = tuple(row.get(column) for column in ROW_COLUMNS)
        placeholders = ", ".join("?" for _ in ROW_COLUMNS)
        columns = ", ".join(f'"{c}"' for c in ROW_COLUMNS)
        with self._lock:
            self._connect().execute(
                f"INSERT INTO runs ({columns}) VALUES ({placeholders})",
                values,
            )

    def rows(
        self,
        limit: Optional[int] = None,
        backend: Optional[str] = None,
        kernel: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Run rows as dicts, newest first, JSON columns decoded."""
        query = f'SELECT {", ".join(_quoted(c) for c in ROW_COLUMNS)} FROM runs'
        clauses, args = [], []
        if backend is not None:
            clauses.append("backend = ?")
            args.append(backend)
        if kernel is not None:
            clauses.append("kernel = ?")
            args.append(kernel)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created_at DESC, run_id"
        if limit is not None:
            query += " LIMIT ?"
            args.append(int(limit))
        with self._lock:
            cursor = self._connect().execute(query, args)
            raw = cursor.fetchall()
        return [self._decode(r) for r in raw]

    def find(self, run_id_prefix: str) -> Optional[Dict[str, Any]]:
        """The unique row whose run_id starts with the prefix, or None.

        Raises :class:`LookupError` naming the candidate run ids when
        the prefix is ambiguous — never silently picks one of them.  An
        exact full-length match always wins (it cannot be a typo for a
        longer id: run ids share one fixed length).
        """
        with self._lock:
            cursor = self._connect().execute(
                f'SELECT {", ".join(_quoted(c) for c in ROW_COLUMNS)} '
                "FROM runs WHERE run_id LIKE ? ORDER BY run_id LIMIT 9",
                (run_id_prefix + "%",),
            )
            raw = cursor.fetchall()
        if not raw:
            return None
        if len(raw) > 1:
            exact = [r for r in raw if r[0] == run_id_prefix]
            if len(exact) == 1:
                return self._decode(exact[0])
            candidates = ", ".join(r[0][:12] for r in raw[:8])
            if len(raw) > 8:
                candidates += ", ..."
            raise LookupError(
                f"run id prefix {run_id_prefix!r} is ambiguous; "
                f"candidates: {candidates} (give more characters)"
            )
        return self._decode(raw[0])

    def count(self) -> int:
        """Total run rows in the ledger."""
        with self._lock:
            cursor = self._connect().execute("SELECT COUNT(*) FROM runs")
            return int(cursor.fetchone()[0])

    def cache_counts(self, since: Optional[float] = None) -> Dict[str, int]:
        """Rows per cache verdict (``hit``/``miss``/``uncached``).

        ``since`` restricts to rows stamped at or after the given
        ``time.time()`` — how the service layer attributes replay
        traffic to one job's execution window.
        """
        query = "SELECT cache, COUNT(*) FROM runs"
        args: List[float] = []
        if since is not None:
            query += " WHERE created_at >= ?"
            args.append(float(since))
        query += " GROUP BY cache"
        with self._lock:
            cursor = self._connect().execute(query, args)
            raw = cursor.fetchall()
        return {
            (verdict if verdict is not None else "unknown"): int(n)
            for verdict, n in raw
        }

    # ---- point claim table (the scheduler's source of truth) ---------------
    #
    # One row per enqueued sweep point, keyed (job_id, seq) and carrying
    # the point's content fingerprint, a serialized SweepPoint ("spec")
    # any worker can rebuild the simulation from, and — once done — the
    # serialized RunResult.  The lifecycle is pending -> claimed ->
    # done/failed, with leases so a crashed worker's claims expire and
    # get re-claimed, and "cancelled" for revoked pending rows.  All
    # transitions are guarded UPDATEs inside one immediate transaction,
    # so two claimers (threads, processes or hosts sharing the database
    # file) can never both win the same row.

    #: Claim stores backed by this class survive the process (the
    #: in-memory store in :mod:`repro.sched.store` reports False).
    durable = True

    @contextmanager
    def _txn(self):
        """One immediate (write-locked) transaction under the lock."""
        with self._lock:
            conn = self._connect()
            conn.execute("BEGIN IMMEDIATE")
            try:
                yield conn
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")

    def enqueue_points(self, job_id: str, rows: List[Dict[str, Any]]) -> int:
        """Insert pending rows for a job; returns how many were new.

        ``INSERT OR IGNORE`` keyed on (job_id, seq) makes enqueueing
        idempotent: re-enqueueing an interrupted job adopts the
        existing rows (done points stay done, pending points stay
        claimable) instead of double-scheduling anything.
        """
        now = time.time()
        inserted = 0
        with self._txn() as conn:
            for row in rows:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO points "
                    "(job_id, seq, fingerprint, label, backend, status, "
                    " claims, enqueued_at, spec) "
                    "VALUES (?, ?, ?, ?, ?, 'pending', 0, ?, ?)",
                    (
                        job_id, int(row["seq"]), row.get("fingerprint"),
                        row.get("label"), row.get("backend"),
                        row.get("enqueued_at", now), row.get("spec"),
                    ),
                )
                inserted += cursor.rowcount
        return inserted

    def claim_points(
        self,
        worker: str,
        limit: Optional[int] = None,
        lease_seconds: float = 120.0,
        job_id: Optional[str] = None,
        now: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Atomically claim up to ``limit`` runnable rows for ``worker``.

        Runnable means PENDING, or CLAIMED with an expired lease (a
        crashed worker's points come back automatically).  Each win is
        a guarded ``UPDATE ... WHERE status='pending' OR (claimed AND
        expired)`` checked by rowcount inside one immediate
        transaction, so concurrent claimers split the table without
        overlap.  Returns the claimed rows (spec included), ordered by
        (enqueued_at, job_id, seq).
        """
        now = time.time() if now is None else now
        guard = (
            "(status = 'pending' OR "
            "(status = 'claimed' AND lease_until IS NOT NULL "
            "AND lease_until < ?))"
        )
        claimed: List[tuple] = []
        with self._txn() as conn:
            query = (
                f"SELECT job_id, seq FROM points WHERE {guard}"
            )
            args: List[Any] = [now]
            if job_id is not None:
                query += " AND job_id = ?"
                args.append(job_id)
            query += " ORDER BY enqueued_at, job_id, seq"
            if limit is not None:
                query += " LIMIT ?"
                args.append(int(limit))
            candidates = conn.execute(query, args).fetchall()
            for jid, seq in candidates:
                cursor = conn.execute(
                    "UPDATE points SET status = 'claimed', worker = ?, "
                    "lease_until = ?, claims = claims + 1 "
                    f"WHERE job_id = ? AND seq = ? AND {guard}",
                    (worker, now + float(lease_seconds), jid, seq, now),
                )
                if cursor.rowcount:
                    claimed.append((jid, seq))
            rows = []
            for jid, seq in claimed:
                raw = conn.execute(
                    f"SELECT {', '.join(POINT_COLUMNS)} FROM points "
                    "WHERE job_id = ? AND seq = ?",
                    (jid, seq),
                ).fetchone()
                rows.append(dict(zip(POINT_COLUMNS, raw)))
        return rows

    def complete_point(
        self,
        job_id: str,
        seq: int,
        worker: str,
        result_doc: Optional[Dict[str, Any]] = None,
        wall_seconds: Optional[float] = None,
        cache: Optional[str] = None,
        now: Optional[float] = None,
    ) -> bool:
        """CLAIMED -> DONE for the worker holding the claim.

        Returns False when the row is no longer this worker's (its
        lease expired and another claimer won it) — the caller's local
        result is still correct, the other worker's row stands.
        """
        now = time.time() if now is None else now
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE points SET status = 'done', result = ?, "
                "wall_seconds = ?, cache = ?, finished_at = ?, "
                "lease_until = NULL, error = NULL "
                "WHERE job_id = ? AND seq = ? AND worker = ? "
                "AND status = 'claimed'",
                (
                    _json_or_none(result_doc), wall_seconds, cache, now,
                    job_id, int(seq), worker,
                ),
            )
            return cursor.rowcount == 1

    def fail_point(
        self,
        job_id: str,
        seq: int,
        worker: str,
        error: str,
        now: Optional[float] = None,
    ) -> bool:
        """CLAIMED -> FAILED with the stored error message."""
        now = time.time() if now is None else now
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE points SET status = 'failed', error = ?, "
                "finished_at = ?, lease_until = NULL "
                "WHERE job_id = ? AND seq = ? AND worker = ? "
                "AND status = 'claimed'",
                (str(error), now, job_id, int(seq), worker),
            )
            return cursor.rowcount == 1

    def release_points(
        self, worker: str, job_id: Optional[str] = None
    ) -> int:
        """This worker's CLAIMED rows back to PENDING (clean handoff)."""
        query = (
            "UPDATE points SET status = 'pending', worker = NULL, "
            "lease_until = NULL WHERE worker = ? AND status = 'claimed'"
        )
        args: List[Any] = [worker]
        if job_id is not None:
            query += " AND job_id = ?"
            args.append(job_id)
        with self._txn() as conn:
            return conn.execute(query, args).rowcount

    def reclaim_expired(
        self, now: Optional[float] = None, job_id: Optional[str] = None
    ) -> int:
        """Expired CLAIMED rows back to PENDING; returns how many.

        :meth:`claim_points` already treats expired claims as
        claimable; this is the explicit sweep a monitoring loop (or
        ``repro-worker``) runs so progress counts reflect the
        reclamation immediately.
        """
        now = time.time() if now is None else now
        query = (
            "UPDATE points SET status = 'pending', worker = NULL, "
            "lease_until = NULL WHERE status = 'claimed' "
            "AND lease_until IS NOT NULL AND lease_until < ?"
        )
        args: List[Any] = [now]
        if job_id is not None:
            query += " AND job_id = ?"
            args.append(job_id)
        with self._txn() as conn:
            return conn.execute(query, args).rowcount

    def renew_leases(
        self,
        worker: str,
        lease_seconds: float,
        job_id: Optional[str] = None,
        now: Optional[float] = None,
    ) -> int:
        """Heartbeat: push this worker's lease deadlines forward."""
        now = time.time() if now is None else now
        query = (
            "UPDATE points SET lease_until = ? "
            "WHERE worker = ? AND status = 'claimed'"
        )
        args: List[Any] = [now + float(lease_seconds), worker]
        if job_id is not None:
            query += " AND job_id = ?"
            args.append(job_id)
        with self._txn() as conn:
            return conn.execute(query, args).rowcount

    def revoke_pending(self, job_id: str) -> int:
        """PENDING -> CANCELLED for a job (claim revocation on cancel)."""
        with self._txn() as conn:
            return conn.execute(
                "UPDATE points SET status = 'cancelled', "
                "finished_at = ? WHERE job_id = ? AND status = 'pending'",
                (time.time(), job_id),
            ).rowcount

    def point_counts(self, job_id: Optional[str] = None) -> Dict[str, int]:
        """Point rows per status (one job, or the whole table)."""
        query = "SELECT status, COUNT(*) FROM points"
        args: List[Any] = []
        if job_id is not None:
            query += " WHERE job_id = ?"
            args.append(job_id)
        query += " GROUP BY status"
        with self._lock:
            raw = self._connect().execute(query, args).fetchall()
        return {status: int(n) for status, n in raw}

    def point_rows(
        self,
        job_id: str,
        status: Optional[str] = None,
        with_result: bool = False,
    ) -> List[Dict[str, Any]]:
        """One job's point rows in seq order.

        ``with_result=False`` (the default) skips the ``result`` and
        ``spec`` columns — progress snapshots poll this, and dragging
        every serialized RunResult through each poll would swamp it.
        """
        columns = (
            POINT_COLUMNS if with_result
            else tuple(c for c in POINT_COLUMNS
                       if c not in ("result", "spec"))
        )
        query = (
            f"SELECT {', '.join(columns)} FROM points WHERE job_id = ?"
        )
        args: List[Any] = [job_id]
        if status is not None:
            query += " AND status = ?"
            args.append(status)
        query += " ORDER BY seq"
        with self._lock:
            raw = self._connect().execute(query, args).fetchall()
        return [dict(zip(columns, r)) for r in raw]

    # ---- service job persistence -------------------------------------------

    def upsert_job(self, row: Dict[str, Any]) -> None:
        """Insert or replace one service job row (restart adoption)."""
        values = tuple(row.get(c) for c in JOB_COLUMNS)
        with self._txn() as conn:
            conn.execute(
                f"INSERT OR REPLACE INTO jobs ({', '.join(JOB_COLUMNS)}) "
                f"VALUES ({', '.join('?' for _ in JOB_COLUMNS)})",
                values,
            )

    def update_job(self, job_id: str, **fields: Any) -> None:
        """Update named columns of one job row."""
        keys = [k for k in fields if k in JOB_COLUMNS and k != "job_id"]
        if not keys:
            return
        assignments = ", ".join(f"{k} = ?" for k in keys)
        with self._txn() as conn:
            conn.execute(
                f"UPDATE jobs SET {assignments} WHERE job_id = ?",
                [fields[k] for k in keys] + [job_id],
            )

    def job_rows(
        self, states: Optional[Sequence[str]] = None
    ) -> List[Dict[str, Any]]:
        """Service job rows (optionally filtered), oldest first."""
        query = f"SELECT {', '.join(JOB_COLUMNS)} FROM jobs"
        args: List[Any] = []
        if states:
            query += (
                f" WHERE state IN ({', '.join('?' for _ in states)})"
            )
            args.extend(states)
        query += " ORDER BY submitted_at, job_id"
        with self._lock:
            raw = self._connect().execute(query, args).fetchall()
        return [dict(zip(JOB_COLUMNS, r)) for r in raw]

    # ---- retention ----------------------------------------------------------

    def prune(
        self,
        keep_last: Optional[int] = None,
        before: Optional[float] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Trim old rows; returns per-table deleted-row counts.

        ``keep_last`` keeps the N newest run rows; ``before`` (a
        ``time.time()`` stamp) deletes runs created earlier.  Given
        both, a run survives only if it is among the N newest *and*
        not older than the cutoff.  Terminal point rows and finished
        job rows older than the effective cutoff are trimmed with the
        runs they accompanied; pending/claimed points are never
        touched (a prune must not eat a live sweep).
        """
        if keep_last is None and before is None:
            raise ValueError("prune needs keep_last and/or before")
        predicates: List[str] = []
        args: List[Any] = []
        if keep_last is not None:
            predicates.append(
                "run_id NOT IN (SELECT run_id FROM runs "
                "ORDER BY created_at DESC, run_id LIMIT ?)"
            )
            args.append(max(0, int(keep_last)))
        if before is not None:
            predicates.append("created_at < ?")
            args.append(float(before))
        run_where = " OR ".join(f"({p})" for p in predicates)
        counts: Dict[str, int] = {}
        with self._txn() as conn:
            # The effective cutoff for the points/jobs tables: the
            # explicit date, or the stamp of the oldest run kept.
            cutoff = before
            if keep_last is not None:
                row = conn.execute(
                    "SELECT MIN(created_at) FROM (SELECT created_at "
                    "FROM runs ORDER BY created_at DESC, run_id "
                    "LIMIT ?)",
                    (max(0, int(keep_last)),),
                ).fetchone()
                if row and row[0] is not None:
                    cutoff = (
                        row[0] if cutoff is None else max(cutoff, row[0])
                    )
            terminal = ", ".join(f"'{s}'" for s in POINT_TERMINAL)
            point_where = (
                f"status IN ({terminal}) AND enqueued_at IS NOT NULL "
                "AND enqueued_at < ?"
            )
            job_where = (
                "state IN ('done', 'failed', 'cancelled') "
                "AND submitted_at IS NOT NULL AND submitted_at < ? "
                "AND job_id NOT IN (SELECT DISTINCT job_id FROM points)"
            )
            if dry_run:
                counts["runs"] = conn.execute(
                    f"SELECT COUNT(*) FROM runs WHERE {run_where}", args
                ).fetchone()[0]
                counts["points"] = counts["jobs"] = 0
                if cutoff is not None:
                    counts["points"] = conn.execute(
                        f"SELECT COUNT(*) FROM points WHERE {point_where}",
                        (cutoff,),
                    ).fetchone()[0]
                    # Count jobs as a real prune would see them: a job
                    # goes when its remaining points would all go too.
                    counts["jobs"] = conn.execute(
                        "SELECT COUNT(*) FROM jobs WHERE "
                        "state IN ('done', 'failed', 'cancelled') "
                        "AND submitted_at IS NOT NULL AND submitted_at < ? "
                        "AND job_id NOT IN (SELECT DISTINCT job_id FROM "
                        f"points WHERE NOT ({point_where}))",
                        (cutoff, cutoff),
                    ).fetchone()[0]
            else:
                counts["runs"] = conn.execute(
                    f"DELETE FROM runs WHERE {run_where}", args
                ).rowcount
                counts["points"] = counts["jobs"] = 0
                if cutoff is not None:
                    counts["points"] = conn.execute(
                        f"DELETE FROM points WHERE {point_where}",
                        (cutoff,),
                    ).rowcount
                    counts["jobs"] = conn.execute(
                        f"DELETE FROM jobs WHERE {job_where}", (cutoff,)
                    ).rowcount
        return counts

    @staticmethod
    def _decode(raw: tuple) -> Dict[str, Any]:
        row = dict(zip(ROW_COLUMNS, raw))
        for column in ("params", "phases", "metrics"):
            if row[column] is not None:
                try:
                    row[column] = json.loads(row[column])
                except (TypeError, ValueError):
                    row[column] = None
        return row

    def close(self) -> None:
        """Close this process's connection (reopens on next use)."""
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                self._conn.close()
            self._conn = None


def _quoted(column: str) -> str:
    """Double-quote a column name (``user`` is a sqlite keyword)."""
    return f'"{column}"'


class LedgerHandle:
    """The process-wide ledger switch the hot paths guard on.

    ``LEDGER.enabled`` is the one-attribute-test fast path; when True,
    ``LEDGER.record_run(...)`` appends a row to the configured database.
    Mirrors the path into :data:`LEDGER_ENV` so spawned worker
    processes inherit the configuration.
    """

    __slots__ = ("enabled", "path", "_ledger")

    def __init__(self) -> None:
        self.enabled = False
        self.path: Optional[str] = None
        self._ledger: Optional[RunLedger] = None

    def configure(self, path: Optional[str], mirror_env: bool = True) -> None:
        """Enable the ledger at ``path`` (None/empty disables).

        ``mirror_env`` writes the choice into ``REPRO_LEDGER`` so pool
        workers spawned later land in the same database even when their
        :class:`~repro.perf.parallel.SweepPoint` predates the flag.
        """
        if path is None or str(path).strip().lower() in _DISABLED_VALUES:
            self.disable(mirror_env=mirror_env)
            return
        path = str(path)
        if self._ledger is not None and self._ledger.path != path:
            self._ledger.close()
            self._ledger = None
        self.path = path
        if self._ledger is None:
            self._ledger = RunLedger(path)
        self.enabled = True
        if mirror_env:
            os.environ[LEDGER_ENV] = path

    def disable(self, mirror_env: bool = True) -> None:
        """Turn recording off (the database file is left in place).

        Clears ``path`` as well: a disabled handle must not keep
        pointing at its last database — service jobs scope the ledger
        to short-lived per-job paths, and a stale pointer could be
        re-mirrored into ``REPRO_LEDGER`` after the file is gone.
        """
        self.enabled = False
        self.path = None
        if self._ledger is not None:
            self._ledger.close()
        if mirror_env:
            os.environ.pop(LEDGER_ENV, None)

    @property
    def ledger(self) -> Optional[RunLedger]:
        """The underlying :class:`RunLedger` (None while disabled)."""
        return self._ledger if self.enabled else None

    def record_run(
        self,
        result,
        backend: str,
        engine_core: str,
        wall_seconds: float,
        params=None,
        fingerprint: Optional[str] = None,
        cache: str = "uncached",
        phases: Optional[Dict[str, float]] = None,
    ) -> Optional[str]:
        """Append one row for a finished run; returns its run id.

        ``result`` is a :class:`~repro.machine.stats.RunResult`; its
        ``detail`` dict *is* the per-run metrics snapshot (the memory
        hierarchy's traffic summary plus backend diagnostics), stored
        as sorted-key JSON.  Failures to reach the database degrade to
        a dropped row, never an error — observability must not take
        down the simulation it observes.
        """
        if not self.enabled or self._ledger is None:
            return None
        # Imported lazily: repro.check imports repro.obs back.
        from ..check.sanitizer import SANITIZER

        if SANITIZER.enabled:
            verdict = (
                f"violations:{SANITIZER.total}" if SANITIZER.total else "ok"
            )
        else:
            verdict = "off"
        params_doc = None
        if params is not None:
            import dataclasses

            try:
                params_doc = dataclasses.asdict(params)
            except TypeError:
                params_doc = {"repr": repr(params)}
        run_id = uuid.uuid4().hex
        row = {
            "run_id": run_id,
            "created_at": time.time(),
            "host": platform.node(),
            "user": _safe_user(),
            "pid": os.getpid(),
            "git_sha": current_git_sha(),
            "backend": backend,
            "engine_core": engine_core,
            "kernel": result.kernel,
            "config": result.config,
            "records": result.records,
            "params": _json_or_none(params_doc),
            "fingerprint": fingerprint,
            "cache": cache,
            "sanitizer": verdict,
            "cycles": result.cycles,
            "useful_ops": result.useful_ops,
            "wall_seconds": wall_seconds,
            "phases": _json_or_none(phases),
            "metrics": _json_or_none(dict(result.detail)),
        }
        try:
            self._ledger.append(row)
        except sqlite3.Error:
            return None
        return run_id


def _safe_user() -> Optional[str]:
    """The invoking user, or None where the lookup fails (containers)."""
    try:
        return getpass.getuser()
    except (KeyError, OSError):
        return None


#: The process-wide ledger the dispatch choke point records into.
LEDGER = LedgerHandle()

# Environment-driven default: workers spawned by a ledger-enabled
# parent (and CI jobs exporting REPRO_LEDGER) record automatically.
_env_path = os.environ.get(LEDGER_ENV)
if _env_path is not None:
    LEDGER.configure(_env_path, mirror_env=False)
del _env_path


def add_ledger_arguments(parser) -> None:
    """Attach the shared ``--ledger`` / ``--no-ledger`` CLI flags.

    The CLIs (``repro-experiments``, ``repro-bench``) record by default:
    ``--ledger PATH`` overrides the database, ``--no-ledger`` opts out,
    and with neither flag the path comes from ``$REPRO_LEDGER`` or
    :data:`DEFAULT_LEDGER`.  Pair with :func:`configure_from_args`.
    """
    parser.add_argument(
        "--ledger", default=None, metavar="DB",
        help="run-ledger sqlite database (default: $REPRO_LEDGER or "
             f"{DEFAULT_LEDGER}; see repro-perf)",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not record runs into the ledger",
    )


def configure_from_args(args) -> None:
    """Apply :func:`add_ledger_arguments` flags to the global LEDGER."""
    if args.no_ledger:
        LEDGER.disable()
        return
    path = args.ledger or os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER
    LEDGER.configure(path)


@contextmanager
def ledger_to(path: Optional[str]):
    """Scope the global ledger to ``path`` (None pauses it) and restore.

    >>> with ledger_to(tmp / "ledger.sqlite"):
    ...     run_points(points)

    Restores the previous enabled/path state — and the ``REPRO_LEDGER``
    mirror — on exit, so tests and nested tools cannot leak a redirect.
    The restore is exception-safe end to end: entry failures unwind
    through the same ``finally``, and the environment mirror is put
    back even if restoring the handle itself raises — nested service
    jobs must never leave ``REPRO_LEDGER`` pointing at a dead per-job
    database (the scope's path, not the caller's), no matter how the
    scope exits.  Entering with ``REPRO_LEDGER`` already naming the
    same path is fine too: the pre-scope value is what comes back.
    """
    prev_enabled, prev_path = LEDGER.enabled, LEDGER.path
    prev_env = os.environ.get(LEDGER_ENV)
    try:
        if path is None:
            LEDGER.disable()
        else:
            LEDGER.configure(str(path))
        yield LEDGER
    finally:
        try:
            if prev_enabled and prev_path is not None:
                LEDGER.configure(prev_path, mirror_env=False)
            else:
                LEDGER.disable(mirror_env=False)
        finally:
            if prev_env is None:
                os.environ.pop(LEDGER_ENV, None)
            else:
                os.environ[LEDGER_ENV] = prev_env


__all__ = [
    "LEDGER",
    "LEDGER_ENV",
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER",
    "JOB_COLUMNS",
    "POINT_CANCELLED",
    "POINT_CLAIMED",
    "POINT_COLUMNS",
    "POINT_DONE",
    "POINT_FAILED",
    "POINT_PENDING",
    "POINT_TERMINAL",
    "ROW_COLUMNS",
    "LedgerHandle",
    "RunLedger",
    "add_ledger_arguments",
    "configure_from_args",
    "current_git_sha",
    "ledger_to",
]
