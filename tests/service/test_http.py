"""End-to-end HTTP API tests: submit, poll, results, cache replay."""

import json
import threading

import pytest

from repro.obs.ledger import RunLedger
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobQueue, JobState
from repro.service.server import ServiceHTTPServer, serve_in_thread


@pytest.fixture()
def service(tmp_path):
    """A live server on an ephemeral port, with its queue and client."""
    queue = JobQueue(
        cache_dir=str(tmp_path / "cache"),
        ledger_path=str(tmp_path / "service_ledger.sqlite"),
        jobs=1,
    )
    server, _thread = serve_in_thread(queue)
    client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout=30.0)
    yield client, queue, tmp_path
    server.shutdown()
    server.server_close()
    queue.shutdown(wait=True, timeout=10.0)


@pytest.fixture()
def parked_service(tmp_path):
    """A live server whose queue worker never starts (jobs stay queued)."""
    queue = JobQueue(cache_dir=str(tmp_path / "cache"))
    server = ServiceHTTPServer(("127.0.0.1", 0), queue)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout=30.0)
    yield client
    server.shutdown()
    server.server_close()


# Large enough that a cold 2-point sweep takes visibly longer than a
# cache replay (the e2e test asserts cold wall > warm wall).
SPEC = {"kernels": ["convert", "fft"], "records": 256}


class TestEndToEnd:
    def test_submit_poll_results_and_cache_replay(self, service):
        """The acceptance path: cold sweep over HTTP, then an identical
        resubmission that replays from the run cache — faster, with
        ledger cache-hit rows, and a byte-identical payload."""
        client, _queue, tmp_path = service
        assert client.health()["status"] == "ok"

        accepted = client.submit(SPEC)
        assert accepted["state"] == JobState.QUEUED
        assert accepted["status_url"].endswith(accepted["job_id"])

        cold = client.wait(accepted["job_id"], timeout=180.0)
        assert cold["state"] == JobState.DONE
        assert cold["progress"]["completed"] == cold["points_total"] == 2
        assert cold["cache"] == {"miss": 2}
        cold_wall = cold["duration_seconds"]
        cold_bytes = client.results_bytes(accepted["job_id"])
        doc = json.loads(cold_bytes.decode("utf-8"))
        assert doc["num_points"] == 2
        assert {row["kernel"] for row in doc["rows"]} == {"convert", "fft"}

        # identical spec again: served from the run cache
        again = client.submit(SPEC)
        assert again["job_id"] != accepted["job_id"]
        assert again["spec_fingerprint"] == accepted["spec_fingerprint"]
        warm = client.wait(again["job_id"], timeout=180.0)
        assert warm["state"] == JobState.DONE
        assert warm["cache"] == {"hit": 2}
        warm_wall = warm["duration_seconds"]
        assert cold_wall > warm_wall

        # the ledger recorded the replays durably
        ledger = RunLedger(str(tmp_path / "service_ledger.sqlite"))
        counts = ledger.cache_counts()
        assert counts.get("hit") == 2 and counts.get("miss") == 2

        # byte-identical payloads: the service contract
        warm_bytes = client.results_bytes(again["job_id"])
        assert warm_bytes == cold_bytes

    def test_n_concurrent_clients_share_one_cold_run(self, service):
        client, _queue, tmp_path = service
        n_clients = 4
        payloads, errors = [], []
        lock = threading.Lock()

        def one_client():
            try:
                own = ServiceClient(client.base_url, timeout=30.0)
                accepted = own.submit(SPEC)
                final = own.wait(accepted["job_id"], timeout=180.0)
                assert final["state"] == JobState.DONE
                body = own.results_bytes(accepted["job_id"])
                with lock:
                    payloads.append(body)
            except Exception as exc:  # surfaced below, not swallowed
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=one_client)
                   for _ in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(payloads) == n_clients
        assert all(p == payloads[0] for p in payloads)

        counts = RunLedger(
            str(tmp_path / "service_ledger.sqlite")
        ).cache_counts()
        assert counts.get("miss") == 2
        assert counts.get("hit") == (n_clients - 1) * 2


class TestErrorsAndControl:
    def test_unknown_paths_and_jobs_are_404(self, service):
        client, _, _ = service
        for path in ("/nope", "/jobs/deadbeef", "/jobs/deadbeef/results"):
            with pytest.raises(ServiceError) as exc_info:
                client._json("GET", path)
            assert exc_info.value.status == 404

    def test_bad_specs_are_400_with_reason(self, service):
        client, _, _ = service
        for spec in (
            {"kernels": ["not-a-kernel"]},
            {"kernels": ["convert"], "typo": 1},
            {"configs": ["S"]},
        ):
            with pytest.raises(ServiceError) as exc_info:
                client.submit(spec)
            assert exc_info.value.status == 400
            assert "bad sweep spec" in exc_info.value.message

    def test_results_before_done_is_409(self, parked_service):
        accepted = parked_service.submit({"kernels": ["convert"]})
        status = parked_service.status(accepted["job_id"])
        assert status["state"] == JobState.QUEUED
        with pytest.raises(ServiceError) as exc_info:
            parked_service.results(accepted["job_id"])
        assert exc_info.value.status == 409

    def test_delete_cancels_a_queued_job(self, parked_service):
        accepted = parked_service.submit({"kernels": ["convert"]})
        reply = parked_service.cancel(accepted["job_id"])
        assert reply["cancelled"] is True
        assert reply["state"] == JobState.CANCELLED
        # still 409 (never DONE), and a repeat cancel reports False
        with pytest.raises(ServiceError) as exc_info:
            parked_service.results(accepted["job_id"])
        assert exc_info.value.status == 409
        assert parked_service.cancel(accepted["job_id"])["cancelled"] is False

    def test_healthz_counts_jobs_by_state(self, parked_service):
        parked_service.submit({"kernels": ["convert"]})
        doc = parked_service.health()
        assert doc["status"] == "ok"
        assert doc["jobs"] == {"queued": 1}
        assert doc["uptime_seconds"] >= 0

    def test_jobs_listing(self, parked_service):
        a = parked_service.submit({"kernels": ["convert"]})["job_id"]
        b = parked_service.submit({"kernels": ["fft"]})["job_id"]
        listed = parked_service.jobs()["jobs"]
        assert [j["job_id"] for j in listed] == [a, b]
        assert all(j["state"] == JobState.QUEUED for j in listed)


class TestSubmitCLI:
    def test_repro_submit_prints_payload_and_exits_zero(
        self, service, capsys
    ):
        from repro.service.cli import submit_main

        client, _, _ = service
        rc = submit_main([
            "convert", "--url", client.base_url, "--records", "8",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out)
        assert payload["num_points"] == 1
        assert payload["rows"][0]["kernel"] == "convert"
        assert "done in" in captured.err

    def test_repro_submit_no_wait_prints_job_id(self, service, capsys):
        from repro.service.cli import submit_main

        client, queue, _ = service
        rc = submit_main([
            "convert", "--url", client.base_url, "--records", "8",
            "--no-wait",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        job_id = captured.out.strip()
        assert queue.get(job_id) is not None

    def test_repro_submit_unreachable_is_exit_2(self, capsys):
        from repro.service.cli import submit_main

        # nothing listens on this port (bind-and-close grabs a free one)
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = submit_main(["convert", "--url", f"http://127.0.0.1:{port}"])
        assert rc == 2
        assert "cannot reach" in capsys.readouterr().err
