"""The invariant sanitizer: core semantics, clean-run acceptance over
every paper kernel and configuration, and doctored-state detection."""

import pytest

import repro.check as check_pkg
from repro.check import InvariantError, SANITIZER, checking
from repro.check.sanitizer import Sanitizer
from repro.kernels.registry import all_specs, spec
from repro.machine import DataflowEngine, GridProcessor, MachineParams, \
    map_window
from repro.machine.config import named_config
from repro.memory import MemorySystem
from repro.memory.storebuffer import StoreBuffer
from repro.obs.metrics import METRICS, collecting
from repro.perf.cache import RunCache

ALL_CONFIGS = ["baseline", "S", "S-O", "S-O-D", "M", "M-D"]


class TestSanitizerCore:
    def test_defaults_off(self):
        assert SANITIZER.enabled is False
        assert SANITIZER.strict is False
        assert SANITIZER.violations == []
        assert SANITIZER.total == 0

    def test_report_collects_structured_violations(self):
        san = Sanitizer()
        san.enabled = True
        v = san.report("unit.test", "widget", "went sideways", got=3, want=1)
        assert san.total == 1
        assert san.violations == [v]
        assert v.invariant == "unit.test"
        assert v.context == (("got", 3), ("want", 1))
        assert "unit.test" in v.render() and "got=3" in v.render()

    def test_expect_reports_only_on_failure(self):
        san = Sanitizer()
        san.enabled = True
        assert san.expect(True, "unit.test", "widget", "fine") is True
        assert san.total == 0
        assert san.expect(False, "unit.test", "widget", "broken") is False
        assert san.total == 1

    def test_max_violations_caps_list_not_counter(self):
        san = Sanitizer()
        san.enabled = True
        san.max_violations = 3
        for i in range(10):
            san.report("unit.test", "widget", f"violation {i}")
        assert len(san.violations) == 3
        assert san.total == 10

    def test_strict_mode_raises_invariant_error(self):
        with pytest.raises(InvariantError, match="unit.test"):
            with checking(strict=True):
                SANITIZER.report("unit.test", "widget", "boom")
        assert SANITIZER.enabled is False  # scope restored after the raise

    def test_checking_scope_saves_and_restores(self):
        with checking() as outer:
            outer.report("unit.outer", "a", "outer violation")
            with checking() as inner:
                assert inner.violations == []  # fresh inner scope
                inner.report("unit.inner", "b", "inner violation")
            # Back in the outer scope: both survive, nothing lost.
            assert [v.invariant for v in SANITIZER.violations] == \
                ["unit.outer", "unit.inner"]
            assert SANITIZER.total == 2
        assert SANITIZER.enabled is False
        # Collected violations stay readable after the scope exits (the
        # docstring idiom asserts on them post-exit); the next checking()
        # entry resets.
        assert SANITIZER.total == 2
        SANITIZER.reset()

    def test_violations_counted_in_metrics_registry(self):
        with collecting() as metrics:
            with checking():
                SANITIZER.report("unit.test", "widget", "boom")
                SANITIZER.report("unit.other", "widget", "boom")
            snapshot = metrics.snapshot()
        assert snapshot["sanitizer.violations"] == 2
        assert snapshot["sanitizer.unit.test"] == 1
        assert snapshot["sanitizer.unit.other"] == 1
        assert METRICS.enabled is False

    def test_lazy_package_exports_resolve(self):
        assert check_pkg.FuzzCase is not None
        assert check_pkg.FaultPlan is not None
        assert callable(check_pkg.run_fuzz)
        assert callable(check_pkg.run_fault_suite)


class TestCleanKernels:
    """Acceptance: every paper kernel under every configuration runs with
    zero invariant violations (ISSUE 4 acceptance criterion)."""

    @pytest.mark.parametrize("name", [s.name for s in all_specs()])
    def test_zero_violations_across_all_configs(self, name):
        s = spec(name)
        kernel = s.kernel()
        records = s.workload(6, 7)
        processor = GridProcessor()
        with checking() as san:
            for cfg in ALL_CONFIGS:
                config = named_config(cfg)
                if processor.supports(kernel, config):
                    processor.run(kernel, records, config)
            rendered = [v.render() for v in san.violations]
            assert san.total == 0, rendered

    def test_stressed_store_buffer_still_clean(self):
        """Capacity eviction (unreachable at the default depth of 16)
        stays invariant-clean at a stress depth of 2."""
        s = spec("fft")
        processor = GridProcessor(MachineParams(store_capacity_lines=2))
        with checking() as san:
            processor.run(s.kernel(), s.workload(12, 7), named_config("S-O"))
            assert san.total == 0, [v.render() for v in san.violations]


class TestViolationDetection:
    """Doctored state must actually trip the checks (no dead sanitizer)."""

    def test_fifo_eviction_clean_by_default(self):
        sb = StoreBuffer(line_words=8, capacity_lines=2)
        with checking() as san:
            for i in range(5):
                sb.push(i * 8, cycle=i)
            assert san.total == 0

    def test_lifo_eviction_reported(self, monkeypatch):
        def lifo_evict(self):
            pending = self._pending_lines
            newest = next(reversed(pending))
            return pending.pop(newest)

        monkeypatch.setattr(StoreBuffer, "_evict_line", lifo_evict)
        sb = StoreBuffer(line_words=8, capacity_lines=2)
        with checking() as san:
            for i in range(5):
                sb.push(i * 8, cycle=i)
            assert any(v.invariant == "storebuffer.fifo_eviction"
                       for v in san.violations)

    def test_lifo_eviction_reported_in_push_many(self, monkeypatch):
        def lifo_evict(self):
            pending = self._pending_lines
            newest = next(reversed(pending))
            return pending.pop(newest)

        monkeypatch.setattr(StoreBuffer, "_evict_line", lifo_evict)
        sb = StoreBuffer(line_words=8, capacity_lines=2)
        with checking() as san:
            sb.push_many([(i * 8, i) for i in range(5)])
            assert any(v.invariant == "storebuffer.fifo_eviction"
                       for v in san.violations)

    def test_nan_detail_breaks_cache_round_trip(self):
        s = spec("convert")
        result = GridProcessor().run(s.kernel(), s.workload(4, 7),
                                     named_config("S"))
        result.detail["poison"] = float("nan")  # nan != nan after reload
        with checking() as san:
            RunCache().put("f" * 16, result)
            assert any(v.invariant == "cache.round_trip"
                       for v in san.violations)

    def test_clean_result_survives_cache_round_trip(self):
        s = spec("convert")
        result = GridProcessor().run(s.kernel(), s.workload(4, 7),
                                     named_config("S"))
        with checking() as san:
            RunCache().put("f" * 16, result)
            assert san.total == 0

    def test_dataflow_checks_flag_doctored_run_state(self):
        """White-box: feed ``_sanitize_run`` inconsistent loop state and
        expect each invariant of the catalog to fire."""
        params = MachineParams()
        kernel = spec("convert").kernel()
        config = named_config("S-O")
        window = map_window(kernel, config, params, iterations=2)
        memory = MemorySystem(params.rows, params.memory_timings())
        memory.configure_smc(config.smc_stream)
        engine = DataflowEngine(window, memory, seed=1)
        with checking() as san:
            engine._sanitize_run(
                trace=[(5, 3), (5, 3)],          # node 3 issues twice at 5
                remaining=[0, -1, 2],            # over- and under-delivery
                arrivals={7: [1, 2]},            # operands still in flight
                store_drain=3,
                last_store_arrival=9,            # drain "finished" early
            )
            invariants = {v.invariant for v in san.violations}
        assert invariants == {
            "dataflow.operand_conservation",
            "dataflow.monotone_node_issue",
            "dataflow.store_drain_completion",
        }

    def test_dataflow_checks_pass_on_consistent_state(self):
        params = MachineParams()
        kernel = spec("convert").kernel()
        config = named_config("S-O")
        window = map_window(kernel, config, params, iterations=2)
        memory = MemorySystem(params.rows, params.memory_timings())
        memory.configure_smc(config.smc_stream)
        engine = DataflowEngine(window, memory, seed=1)
        with checking() as san:
            engine._sanitize_run(
                trace=[(5, 3), (6, 3), (6, 4)],
                remaining=[0, 0, 0],
                arrivals={},
                store_drain=11,
                last_store_arrival=9,
            )
            assert san.total == 0


class TestWordsDrainedMetric:
    def test_run_detail_exports_words_drained(self):
        s = spec("fft")
        result = GridProcessor().run(s.kernel(), s.workload(8, 7),
                                     named_config("S-O"))
        assert "storebuffer.words_drained" in result.detail
        assert result.detail["storebuffer.words_drained"] > 0
