"""From-scratch cryptographic substrates for the network/security kernels.

The paper's network benchmarks are MD5, Blowfish and Rijndael (AES) over
1500-byte packets.  These pure-Python references define the bit-exact
behaviour the data-parallel kernels must reproduce; they are validated
against hashlib (MD5), Eric Young's vectors (Blowfish) and FIPS-197
(AES).  Blowfish's pi-derived constants are themselves computed from
scratch (:mod:`repro.crypto.pi_digits`).
"""

from .pi_digits import pi_fractional_hex, pi_words
from .md5_ref import IV as MD5_IV
from .md5_ref import SHIFTS as MD5_SHIFTS
from .md5_ref import compress as md5_compress
from .md5_ref import digest as md5_digest
from .md5_ref import hexdigest as md5_hexdigest
from .md5_ref import message_index, pad as md5_pad, sine_table
from .blowfish_ref import ROUNDS as BLOWFISH_ROUNDS
from .blowfish_ref import TEST_VECTORS as BLOWFISH_TEST_VECTORS
from .blowfish_ref import Blowfish
from .aes_ref import FIPS_VECTOR as AES_FIPS_VECTOR
from .aes_ref import (
    encrypt_block as aes_encrypt_block,
    encrypt_block_words as aes_encrypt_block_words,
    expand_key_128,
    gf_mul,
    sbox,
    t_tables,
)

__all__ = [
    "pi_fractional_hex",
    "pi_words",
    "MD5_IV",
    "MD5_SHIFTS",
    "md5_compress",
    "md5_digest",
    "md5_hexdigest",
    "message_index",
    "md5_pad",
    "sine_table",
    "BLOWFISH_ROUNDS",
    "BLOWFISH_TEST_VECTORS",
    "Blowfish",
    "AES_FIPS_VECTOR",
    "aes_encrypt_block",
    "aes_encrypt_block_words",
    "expand_key_128",
    "gf_mul",
    "sbox",
    "t_tables",
]
