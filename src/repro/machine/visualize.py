"""ASCII visualization of the array, placements and window activity.

Debugging/teaching aids standing in for the paper's block diagrams
(Figures 3 and 4): render the grid's structural configuration, the slot
occupancy of a placement, and a cycle-bucketed issue timeline of a
simulated window.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .config import MachineConfig
from .mapping import MappedWindow
from .params import MachineParams
from .placement import Placement


def render_array(params: MachineParams, config: Optional[MachineConfig] = None) -> str:
    """Figure 3-style block diagram of the configured substrate."""
    lines: List[str] = []
    title = f"{params.rows}x{params.cols} grid processor"
    if config is not None:
        title += f" — configuration {config.name} ({config.architecture_model})"
    lines.append(title)
    lines.append("")
    bank = "SMC" if (config and config.smc_stream) else "L2 "
    for r in range(params.rows):
        cells = []
        for c in range(params.cols):
            tags = "A"  # ALU
            if config and config.local_pc:
                tags += "P"  # local PC + L0 I-store
            if config and config.l0_data:
                tags += "D"  # L0 data store
            cells.append(f"[{tags:>3s}]")
        lines.append(f" {bank}{r} ══▶ " + " ".join(cells))
    lines.append("")
    legend = ["A = ALU node (reservation stations, FPU/int units)"]
    if config and config.local_pc:
        legend.append("P = local program counter + L0 instruction store")
    if config and config.l0_data:
        legend.append("D = software-managed L0 data store")
    legend.append(
        f"{bank.strip()}<r> = per-row memory bank feeding its streaming channel"
    )
    lines.extend("  " + item for item in legend)
    return "\n".join(lines)


def render_placement(placement: Placement, params: MachineParams) -> str:
    """Slot occupancy heat map of a placement (one cell per node)."""
    lines = [f"placement: {placement.iterations} iteration(s), "
             f"{len(placement.node_of)} instructions"]
    for r in range(params.rows):
        cells = []
        for c in range(params.cols):
            used = placement.slots_used.get(r * params.cols + c, 0)
            cells.append(f"{used:3d}")
        lines.append("  " + " ".join(cells))
    lines.append(f"  max slots on one node: {placement.max_slot_usage()} "
                 f"(capacity {params.slots_per_node})")
    return "\n".join(lines)


def render_timeline(
    trace, params: MachineParams, bucket: int = 8, max_buckets: int = 24
) -> str:
    """Issue-activity timeline from a DataflowEngine trace.

    One row per cycle bucket: issues in the bucket and a bar proportional
    to array utilization (issues / (bucket x nodes)).
    """
    if not trace:
        return "(empty trace)"
    last = max(entry[0] for entry in trace)
    n_buckets = min(max_buckets, last // bucket + 1)
    scale = max(1, (last + 1) // n_buckets)
    counts: Dict[int, int] = {}
    for cycle, *_ in trace:
        counts[cycle // scale] = counts.get(cycle // scale, 0) + 1
    lines = [f"issue timeline ({len(trace)} issues over {last + 1} cycles, "
             f"{scale}-cycle buckets)"]
    peak = scale * params.nodes
    for b in range(max(counts) + 1):
        n = counts.get(b, 0)
        bar = "#" * max(1 if n else 0, round(40 * n / peak))
        lines.append(f"  {b * scale:6d}+ {n:6d} {bar}")
    return "\n".join(lines)


def render_window_summary(window: MappedWindow) -> str:
    """Composition of a mapped window by instance kind."""
    kinds: Dict[str, int] = {}
    for inst in window.instances:
        kinds[inst.kind] = kinds.get(inst.kind, 0) + 1
    lines = [
        f"window of {window.iterations} x {window.kernel.name}: "
        f"{window.machine_instructions} machine instructions"
    ]
    for kind in sorted(kinds):
        lines.append(f"  {kind:8s} {kinds[kind]:6d}")
    if window.const_reads:
        lines.append(f"  register reads for scalar constants: "
                     f"{len(window.const_reads)}")
    else:
        lines.append("  scalar constants revitalized (no register traffic)")
    return "\n".join(lines)
