"""Reference Blowfish implementation (substrate for the blowfish kernel).

A complete, from-scratch Blowfish: P-array/S-boxes seeded from pi digits
(computed in :mod:`repro.crypto.pi_digits`), the standard key schedule,
and ECB block encrypt/decrypt.  The data-parallel kernel is validated
bit-for-bit against this module, which in turn is validated against
Eric Young's published test vectors and by decrypt(encrypt(x)) == x.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .pi_digits import pi_words

MASK32 = 0xFFFFFFFF
ROUNDS = 16


class Blowfish:
    """Blowfish with a 4-56 byte key."""

    def __init__(self, key: bytes):
        if not 4 <= len(key) <= 56:
            raise ValueError(f"key must be 4..56 bytes, got {len(key)}")
        digits = pi_words(18 + 4 * 256)
        self.P: List[int] = digits[:18]
        self.S: List[List[int]] = [
            digits[18 + 256 * box : 18 + 256 * (box + 1)] for box in range(4)
        ]
        self._expand_key(key)

    def _expand_key(self, key: bytes) -> None:
        # XOR the key cyclically into the P-array.
        j = 0
        for i in range(18):
            chunk = 0
            for _ in range(4):
                chunk = ((chunk << 8) | key[j]) & MASK32
                j = (j + 1) % len(key)
            self.P[i] ^= chunk
        # Re-encrypt the all-zero block through P and the S-boxes.
        left = right = 0
        for i in range(0, 18, 2):
            left, right = self.encrypt_block_words(left, right)
            self.P[i], self.P[i + 1] = left, right
        for box in range(4):
            for i in range(0, 256, 2):
                left, right = self.encrypt_block_words(left, right)
                self.S[box][i], self.S[box][i + 1] = left, right

    # ---- core rounds ---------------------------------------------------

    def _f(self, x: int) -> int:
        a = (x >> 24) & 0xFF
        b = (x >> 16) & 0xFF
        c = (x >> 8) & 0xFF
        d = x & 0xFF
        return ((((self.S[0][a] + self.S[1][b]) & MASK32) ^ self.S[2][c])
                + self.S[3][d]) & MASK32

    def encrypt_block_words(self, left: int, right: int) -> Tuple[int, int]:
        for i in range(ROUNDS):
            left ^= self.P[i]
            right ^= self._f(left)
            left, right = right, left
        left, right = right, left  # undo the final swap
        right ^= self.P[16]
        left ^= self.P[17]
        return left, right

    def decrypt_block_words(self, left: int, right: int) -> Tuple[int, int]:
        for i in range(17, 1, -1):
            left ^= self.P[i]
            right ^= self._f(left)
            left, right = right, left
        left, right = right, left
        right ^= self.P[1]
        left ^= self.P[0]
        return left, right

    # ---- byte-level ECB ------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 8:
            raise ValueError("Blowfish blocks are 8 bytes")
        left = int.from_bytes(block[:4], "big")
        right = int.from_bytes(block[4:], "big")
        left, right = self.encrypt_block_words(left, right)
        return left.to_bytes(4, "big") + right.to_bytes(4, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 8:
            raise ValueError("Blowfish blocks are 8 bytes")
        left = int.from_bytes(block[:4], "big")
        right = int.from_bytes(block[4:], "big")
        left, right = self.decrypt_block_words(left, right)
        return left.to_bytes(4, "big") + right.to_bytes(4, "big")

    def encrypt_ecb(self, data: bytes) -> bytes:
        if len(data) % 8:
            raise ValueError("data must be a multiple of 8 bytes")
        return b"".join(
            self.encrypt_block(data[i : i + 8]) for i in range(0, len(data), 8)
        )

    def decrypt_ecb(self, data: bytes) -> bytes:
        if len(data) % 8:
            raise ValueError("data must be a multiple of 8 bytes")
        return b"".join(
            self.decrypt_block(data[i : i + 8]) for i in range(0, len(data), 8)
        )


#: Published test vectors (key, plaintext, ciphertext) from Eric Young's
#: reference suite; the test suite checks these.
TEST_VECTORS: Sequence[Tuple[bytes, bytes, bytes]] = (
    (
        bytes.fromhex("0000000000000000"),
        bytes.fromhex("0000000000000000"),
        bytes.fromhex("4EF997456198DD78"),
    ),
    (
        bytes.fromhex("FFFFFFFFFFFFFFFF"),
        bytes.fromhex("FFFFFFFFFFFFFFFF"),
        bytes.fromhex("51866FD5B85ECB8A"),
    ),
    (
        bytes.fromhex("3000000000000000"),
        bytes.fromhex("1000000000000001"),
        bytes.fromhex("7D856F9A613063F2"),
    ),
)
