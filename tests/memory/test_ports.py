"""PortQueue arbitration invariants (property-based)."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.ports import PortQueue, ThroughputMeter


class TestPortQueue:
    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            PortQueue(0)

    def test_serializes_same_cycle_requests(self):
        q = PortQueue(1)
        grants = [q.reserve(0) for _ in range(4)]
        assert grants == [0, 1, 2, 3]

    def test_multi_port_packs_per_cycle(self):
        q = PortQueue(2)
        grants = [q.reserve(0) for _ in range(5)]
        assert grants == [0, 0, 1, 1, 2]

    def test_grant_never_before_request(self):
        q = PortQueue(2)
        assert q.reserve(10) == 10
        assert q.reserve(5) == 5  # earlier slot still free

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=120),
           st.integers(min_value=1, max_value=4))
    def test_never_overbooked_and_never_early(self, arrivals, ports):
        q = PortQueue(ports)
        grants = []
        for arrival in arrivals:
            grant = q.reserve(arrival)
            assert grant >= arrival
            grants.append(grant)
        usage = Counter(grants)
        assert max(usage.values()) <= ports

    def test_reserve_many_returns_last_cycle(self):
        q = PortQueue(1)
        assert q.reserve_many(0, 3) == 2

    def test_average_wait_accounting(self):
        q = PortQueue(1)
        for _ in range(3):
            q.reserve(0)
        assert q.total_requests == 3
        assert q.average_wait == pytest.approx(1.0)  # waits 0,1,2

    def test_reset_clears_state(self):
        q = PortQueue(1)
        q.reserve(0)
        q.reset()
        assert q.reserve(0) == 0
        assert q.total_requests == 1


class TestThroughputMeter:
    def test_words_per_cycle(self):
        m = ThroughputMeter()
        m.record(10, 4)
        m.record(13, 4)
        assert m.words == 8
        assert m.words_per_cycle == pytest.approx(8 / 4)

    def test_empty_meter(self):
        assert ThroughputMeter().words_per_cycle == 0.0
