"""GridProcessor end-to-end behaviour across configurations."""

import pytest

from repro.isa import evaluate_stream
from repro.kernels import spec
from repro.machine import GridProcessor, MachineConfig, MachineParams, TABLE5_CONFIGS


@pytest.fixture(scope="module")
def proc():
    return GridProcessor()


class TestRunBasics:
    def test_empty_stream_rejected(self, proc):
        with pytest.raises(ValueError, match="empty record stream"):
            proc.run(spec("fft").kernel(), [], MachineConfig.S())

    @pytest.mark.parametrize("config", list(TABLE5_CONFIGS) +
                             [MachineConfig.baseline()],
                             ids=lambda c: c.name)
    def test_all_configs_produce_positive_results(self, proc, config):
        s = spec("fft")
        result = proc.run(s.kernel(), s.workload(64), config)
        assert result.cycles > 0
        assert result.useful_ops == 64 * s.kernel().useful_ops()
        assert 0 < result.ops_per_cycle < 64  # bounded by the issue width

    def test_more_records_more_cycles(self, proc):
        s = spec("convert")
        k = s.kernel()
        short = proc.run(k, s.workload(256), MachineConfig.S_O())
        long = proc.run(k, s.workload(1024), MachineConfig.S_O())
        assert long.cycles > short.cycles
        # Setup amortizes away: the long run has *better* throughput, and
        # the steady-state per-window interval is identical.
        assert long.ops_per_cycle >= short.ops_per_cycle
        assert long.window.cycles == short.window.cycles

    def test_determinism(self, proc):
        s = spec("blowfish")
        a = proc.run(s.kernel(), s.workload(64), MachineConfig.S_O_D())
        b = proc.run(s.kernel(), s.workload(64), MachineConfig.S_O_D())
        assert a.cycles == b.cycles


class TestFunctionalMode:
    def test_block_configs_return_evaluator_outputs(self, proc):
        s = spec("convert")
        records = s.workload(8)
        result = proc.run(s.kernel(), records, MachineConfig.S_O(),
                          functional=True)
        assert result.outputs == evaluate_stream(s.kernel(), records)

    def test_mimd_outputs_match_reference(self, proc):
        s = spec("blowfish")
        records = s.workload(8)
        result = proc.run(s.kernel(), records, MachineConfig.M_D(),
                          functional=True)
        assert result.outputs == [s.reference(r) for r in records]


class TestAccounting:
    def test_variable_loop_useful_ops_use_trip_counts(self, proc):
        s = spec("vertex-skinning")
        records = s.workload(32)
        k = s.kernel()
        result = proc.run(k, records, MachineConfig.S_O_D())
        expected = sum(k.useful_ops_live(k.trip_count(r)) for r in records)
        assert result.useful_ops == expected
        assert result.useful_ops < 32 * k.useful_ops()  # some bones skipped

    def test_speedup_requires_same_kernel(self, proc):
        a = proc.run(spec("fft").kernel(), spec("fft").workload(16),
                     MachineConfig.S())
        b = proc.run(spec("lu").kernel(), spec("lu").workload(16),
                     MachineConfig.S())
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_supports_honours_l0_capacity(self):
        small = GridProcessor(MachineParams(l0_data_bytes=64))
        assert not small.supports(spec("rijndael").kernel(),
                                  MachineConfig.S_O_D())
        assert small.supports(spec("fft").kernel(), MachineConfig.S_O_D())


class TestScaling:
    def test_bigger_grid_is_faster_for_parallel_kernels(self):
        s = spec("fft")
        small = GridProcessor(MachineParams(rows=4, cols=4))
        big = GridProcessor(MachineParams(rows=8, cols=8))
        t_small = small.run(s.kernel(), s.workload(256), MachineConfig.S())
        t_big = big.run(s.kernel(), s.workload(256), MachineConfig.S())
        assert t_big.cycles < t_small.cycles

    def test_revitalize_delay_costs_cycles(self):
        s = spec("fft")
        cheap = GridProcessor(MachineParams(revitalize_delay=0))
        dear = GridProcessor(MachineParams(revitalize_delay=40))
        t_cheap = cheap.run(s.kernel(), s.workload(512), MachineConfig.S())
        t_dear = dear.run(s.kernel(), s.workload(512), MachineConfig.S())
        assert t_dear.cycles > t_cheap.cycles
