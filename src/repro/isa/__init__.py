"""Dataflow ISA for the reconfigurable data-parallel substrate.

This package defines the instruction set the benchmark kernels are coded
in (the reproduction's analogue of hand-coded TRIPS assembly): opcodes
with bit-true semantics, SPDI-style dataflow instructions, the kernel
container, the :class:`KernelBuilder` DSL, a functional evaluator, a
structural validator and a round-trippable text assembly format.
"""

from .opcodes import OPCODES, DEFAULT_LATENCY, OpClass, OpcodeInfo, opcode
from .instruction import (
    Const,
    Immediate,
    InstResult,
    Instruction,
    Operand,
    RecordInput,
    make_instruction,
)
from .kernel import ControlClass, Domain, Kernel, LoopInfo
from .builder import KernelBuilder, Value
from .evaluate import EvaluationError, evaluate_kernel, evaluate_stream
from .validate import KernelValidationError, validate_kernel
from .asm import AsmError, assemble, disassemble

__all__ = [
    "OPCODES",
    "DEFAULT_LATENCY",
    "OpClass",
    "OpcodeInfo",
    "opcode",
    "Const",
    "Immediate",
    "InstResult",
    "Instruction",
    "Operand",
    "RecordInput",
    "make_instruction",
    "ControlClass",
    "Domain",
    "Kernel",
    "LoopInfo",
    "KernelBuilder",
    "Value",
    "EvaluationError",
    "evaluate_kernel",
    "evaluate_stream",
    "KernelValidationError",
    "validate_kernel",
    "AsmError",
    "assemble",
    "disassemble",
]
