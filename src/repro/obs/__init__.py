"""Observability for the simulation pipeline (``repro.obs``).

Four coupled layers, all following the :data:`~repro.perf.phases.PHASES`
pattern of near-zero cost when disabled:

* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms (``l1.hits``, ``net.operand_hops``,
  ``revitalize.broadcasts``, ``runcache.hit_rate``, ...), instrumented
  through the engines, the memory system and the perf layer, with
  per-run snapshots merged into ``RunResult.detail``;
* :mod:`repro.obs.trace` — a cycle-accurate event recorder emitting
  Chrome trace-event JSON (one track per ALU node / memory port / stream
  channel), plus the analysis behind the ``repro-trace`` CLI
  (:mod:`repro.obs.cli`);
* :mod:`repro.obs.ledger` — the durable run ledger: one sqlite row per
  dispatched simulation point (fingerprint, backend, engine core,
  phases, metrics snapshot, cache/sanitizer verdicts, provenance),
  read back by the ``repro-perf`` CLI (:mod:`repro.obs.perfcli`);
* :mod:`repro.obs.progress` — live sweep progress with a
  ``get_current_state()`` snapshot API and the
  ``repro-experiments --progress`` stderr ticker.

This package deliberately imports nothing from ``repro.machine`` or
``repro.memory`` at module level — those layers import *it*, so the
instrumentation can sit directly on the hot paths without cycles.
"""

from contextlib import contextmanager

from .ledger import (
    DEFAULT_LEDGER,
    LEDGER,
    LEDGER_ENV,
    LEDGER_SCHEMA,
    LedgerHandle,
    RunLedger,
    current_git_sha,
    ledger_to,
)
from .metrics import METRICS, Histogram, MetricsRegistry, collecting
from .progress import (
    PROGRESS,
    ProgressTracker,
    point_label,
    progress_ticker,
    render_state,
    tracking,
)
from .trace import (
    CTL,
    EXEC,
    MEM,
    TRACE,
    TraceRecorder,
    diff_traces,
    load_trace,
    occupancy_heatmap,
    recording,
    subsystems,
    trace_span,
    utilization_table,
    validate_chrome_trace,
)


@contextmanager
def observability_paused():
    """Temporarily disable metrics and tracing around a block.

    The processor uses this to suppress the cold cache-warming pass of
    block-style runs, so recordings describe only the steady-state
    window.  A no-op (two attribute writes) when nothing is enabled.
    """
    metrics_was, trace_was = METRICS.enabled, TRACE.enabled
    METRICS.enabled = False
    TRACE.enabled = False
    try:
        yield
    finally:
        METRICS.enabled = metrics_was
        TRACE.enabled = trace_was


__all__ = [
    "METRICS",
    "MetricsRegistry",
    "Histogram",
    "collecting",
    "LEDGER",
    "LEDGER_ENV",
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER",
    "LedgerHandle",
    "RunLedger",
    "current_git_sha",
    "ledger_to",
    "PROGRESS",
    "ProgressTracker",
    "tracking",
    "point_label",
    "render_state",
    "progress_ticker",
    "TRACE",
    "TraceRecorder",
    "recording",
    "EXEC",
    "MEM",
    "CTL",
    "load_trace",
    "validate_chrome_trace",
    "subsystems",
    "trace_span",
    "occupancy_heatmap",
    "utilization_table",
    "diff_traces",
    "observability_paused",
]
