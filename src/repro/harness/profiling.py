"""Shared ``--profile`` support for the harness CLIs.

Both ``repro-experiments`` and ``repro-bench`` accept ``--profile``,
which wraps the work in :mod:`cProfile` and prints the top functions by
cumulative time — enough to localize a hot-path regression without
leaving the tool.  The report goes to stderr so piped stdout (rendered
tables, JSON reports) stays clean.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO


@contextmanager
def profiled(
    label: str = "",
    top: int = 25,
    stream: Optional[TextIO] = None,
) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block and print the ``top`` functions.

    Sorted by cumulative time (callers of the hot paths surface next to
    the hot paths themselves).  ``label`` names the block in the report
    header; ``stream`` defaults to stderr.
    """
    out = stream if stream is not None else sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        header = f"--- profile: {label} ---" if label else "--- profile ---"
        out.write(header + "\n")
        out.write(buffer.getvalue())
        out.flush()


def add_profile_arguments(parser) -> None:
    """Install the shared ``--profile`` / ``--profile-top`` options."""
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the run with cProfile and print the hottest "
             "functions (by cumulative time) to stderr",
    )
    parser.add_argument(
        "--profile-top", type=int, default=25, metavar="N",
        help="how many functions the --profile report shows (default 25)",
    )
