"""The repro-experiments CLI: end-of-run summary and stream hygiene."""

from repro.harness import experiments, runner
from repro.machine import MachineParams
from repro.machine.config import named_config
from repro.perf import parallel


def small_context(**kwargs):
    return experiments.ExperimentContext(
        params=MachineParams(), records=16, large_kernel_records=16, **kwargs
    )


class TestRunSummary:
    def test_reports_cache_and_point_accounting(self):
        ctx = small_context()
        ctx.run("convert", named_config("S"))
        ctx.run("convert", named_config("S"))  # memory hit
        text = runner.run_summary(ctx)
        assert "run summary" in text
        assert "1 hits / 1 misses" in text
        assert "simulated points : 1" in text

    def test_includes_last_dispatch_when_present(self, monkeypatch):
        stats = parallel.DispatchStats(points=4, workers=1, mode="serial")
        monkeypatch.setattr(parallel, "LAST_DISPATCH", stats)
        text = runner.run_summary(small_context())
        assert "dispatch         : serial, 1 worker(s), 4 point(s)" in text

    def test_in_context_sweep_records_dispatch_stats(self, monkeypatch):
        """run_many's serial fast path (one effective worker) still
        publishes DispatchStats, so 1-CPU hosts get a dispatch line."""
        monkeypatch.setattr(
            experiments, "effective_workers", lambda jobs, n: 1
        )
        monkeypatch.setattr(parallel, "LAST_DISPATCH", None)
        ctx = small_context(jobs=4)
        ctx.run_many([("convert", named_config("S"))])
        stats = parallel.LAST_DISPATCH
        assert stats is not None and stats.mode == "in-context"
        assert stats.points == 1 and stats.workers == 1

    def test_main_keeps_stdout_deterministic(self, capsys):
        """The summary (timings, hit rates) goes to stderr so stdout
        stays byte-identical across serial/parallel/replay runs."""
        assert runner.main(["table1", "--records", "16"]) == 0
        captured = capsys.readouterr()
        assert "run summary" not in captured.out
        assert "run summary" in captured.err

class TestBackendFlag:
    def test_backend_selects_the_model(self, capsys):
        assert runner.main(
            ["table4", "--backend", "vector", "--records", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_backend_output_differs_from_grid(self, capsys):
        runner.main(["table4", "--records", "16"])
        grid_out = capsys.readouterr().out
        runner.main(["table4", "--backend", "simd", "--records", "16"])
        simd_out = capsys.readouterr().out
        assert grid_out != simd_out

    def test_unknown_backend_rejected(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            runner.main(["table1", "--backend", "no-such-model"])

    def test_grid_flags_warn_on_fixed_backends(self, capsys):
        """--rows/--cols shape the grid substrate; a fixed comparator
        warns and ignores them instead of silently aliasing sweeps."""
        runner.main(
            ["table1", "--backend", "simd", "--rows", "4", "--records", "16"]
        )
        err = capsys.readouterr().err
        assert "--rows/--cols" in err and "'simd'" in err

    def test_grid_flags_stay_silent_on_grid_backends(self, capsys):
        runner.main(["table1", "--rows", "4", "--cols", "4",
                     "--records", "16"])
        err = capsys.readouterr().err
        assert "--rows/--cols" not in err

    def test_figure2_measured_is_registered_but_not_default(self, capsys):
        assert runner.main(["figure2_measured", "--records", "16"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2 (measured)" in out
        assert "figure2_measured" not in runner._DEFAULT_NAMES
        ctx = small_context()
        assert "figure2_measured" in runner._registry(ctx)
