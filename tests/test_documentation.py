"""Documentation guarantees: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    """Every public top-level class and function has a docstring.

    (Method-level documentation is enforced by review, not by this test:
    one-line arithmetic wrappers like the shader algebra's ``mul`` are
    self-describing and uniform method docstrings there would be noise.)
    """
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"
