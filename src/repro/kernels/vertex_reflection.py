"""``vertex-reflection`` — vertex shader for a reflective surface.

Transforms the vertex, computes the eye-space reflection vector
R = I - 2(N·I)N and projects it onto a cube-map face, emitting the
2-word face texture coordinate (Table 2: record 9/2, ~35 scalar
constants, no irregular accesses — the texture fetch happens in the
paired fragment shader).
"""

from __future__ import annotations

from typing import List, Sequence

from ..isa import Domain, Kernel, KernelBuilder
from ..workloads.graphics import reflection_vertex_records
from ._shader_alg import (
    BuilderAlg,
    FloatAlg,
    dot3,
    make_matrix33,
    make_matrix34,
    mat33_transform,
    mat34_transform,
    normalize3,
)

MODELVIEW_ROWS = make_matrix34("vertex-reflection/modelview")
NORMAL_ROWS = make_matrix33("vertex-reflection/normal")
PROJ_ROWS = make_matrix34("vertex-reflection/proj")


def _shade(alg, record):
    pos = list(record[0:3])
    nrm = list(record[3:6])
    eye = list(record[6:9])

    mv = [[alg.const(v, f"mv{r}{c}") for c, v in enumerate(row)]
          for r, row in enumerate(MODELVIEW_ROWS)]
    nmat = [[alg.const(v, f"n{r}{c}") for c, v in enumerate(row)]
            for r, row in enumerate(NORMAL_ROWS)]
    proj = [[alg.const(v, f"p{r}{c}") for c, v in enumerate(row)]
            for r, row in enumerate(PROJ_ROWS)]

    eye_pos = mat34_transform(alg, mv, pos)
    normal = normalize3(alg, mat33_transform(alg, nmat, nrm))
    # Incident vector from the eye point to the surface, normalized.
    incident = normalize3(
        alg, [alg.sub(eye_pos[i], eye[i]) for i in range(3)]
    )
    # R = I - 2 (N . I) N
    ndoti = dot3(alg, normal, incident)
    two_ndoti = alg.mul(alg.imm(2.0), ndoti)
    refl = [
        alg.sub(incident[i], alg.mul(two_ndoti, normal[i])) for i in range(3)
    ]
    # Project through a second transform (the cube-map orientation), then
    # divide by the dominant axis to get face coordinates.
    oriented = mat34_transform(alg, proj, refl)
    ax = alg.abs(oriented[0])
    ay = alg.abs(oriented[1])
    az = alg.abs(oriented[2])
    dominant = alg.max(ax, alg.max(ay, alg.max(az, alg.imm(1e-6))))
    inv = alg.rcp(dominant)
    half = alg.imm(0.5)
    s = alg.madd(alg.mul(oriented[0], inv), half, half)
    t = alg.madd(alg.mul(oriented[1], inv), half, half)
    return [s, t]


def build_kernel() -> Kernel:
    """Construct the kernel's dataflow graph (see module docstring)."""
    b = KernelBuilder(
        "vertex-reflection", Domain.GRAPHICS, record_in=9, record_out=2,
        description="Vertex shader for a reflective surface.",
    )
    for value in _shade(BuilderAlg(b), b.inputs()):
        b.output(value)
    return b.build()


def reference(record: Sequence[float]) -> List[float]:
    """Independent per-record reference implementation."""
    return _shade(FloatAlg(), list(record))


def workload(count: int, seed: int = 37) -> List[List[float]]:
    """Seeded record stream shaped for this kernel (see Table 2)."""
    return reflection_vertex_records(count, seed)
