"""Cycle-accurate event tracing in Chrome trace-event format.

The recorder collects microarchitectural events — instruction issue on
each ALU node, LMW bursts on the streaming channels, L1 bank accesses,
store-buffer pushes, revitalize broadcasts — and exports them as Chrome
trace-event JSON, loadable in Perfetto or ``chrome://tracing``.  One
*track* (a pid/tid pair in the trace file) is allocated per resource:
each ALU node, each memory port / stream channel / store buffer, and the
block-control sequencer.  Timestamps are simulated **cycles** (written
into the format's microsecond field, so one trace-viewer microsecond is
one machine cycle).

Like :data:`~repro.obs.metrics.METRICS` and
:data:`~repro.perf.phases.PHASES`, the recorder is process-global and
explicitly enabled; disabled it costs a single attribute test at each
instrumentation point.  Block-style runs trace only the *steady-state*
window (the cold cache-warming pass is suppressed by the processor), so
ALU/memory timestamps are window-local cycles while control events use
composed-run cycles.

Beyond recording, this module carries the trace *analysis* used by the
``repro-trace`` CLI: schema validation, a text ALU-occupancy heatmap,
a per-resource utilization table, and a two-trace diff.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: Subsystem (process-track) names used by the instrumentation.
EXEC = "execution"       # ALU array: one thread per node
MEM = "memory"           # ports, channels, store buffers, L1 banks
CTL = "control"          # revitalization / block sequencing

#: Intensity ramp for the text occupancy heatmap (low -> high).
HEAT_RAMP = " .:-=+*#%@"


class TraceRecorder:
    """Collects trace events into one in-memory run recording."""

    __slots__ = ("enabled", "events", "label", "_pids", "_tids")

    def __init__(self) -> None:
        self.enabled = False
        self.events: List[dict] = []
        self.label = ""
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[str, str], int] = {}

    # ---- event emission (callers guard with ``if TRACE.enabled:``) ------

    def _track(self, process: str, thread: str) -> Tuple[int, int]:
        pid = self._pids.get(process)
        if pid is None:
            pid = self._pids[process] = len(self._pids) + 1
        key = (process, thread)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = len(self._tids) + 1
        return pid, tid

    def complete(
        self,
        process: str,
        thread: str,
        name: str,
        ts: float,
        dur: float,
        args: Optional[dict] = None,
    ) -> None:
        """A span on a track: ``[ts, ts + dur)`` in cycles (``ph: X``)."""
        pid, tid = self._track(process, thread)
        event = {
            "name": name, "ph": "X", "cat": process,
            "ts": float(ts), "dur": float(dur), "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self,
        process: str,
        thread: str,
        name: str,
        ts: float,
        args: Optional[dict] = None,
    ) -> None:
        """A point event on a track (``ph: i``, thread scope)."""
        pid, tid = self._track(process, thread)
        event = {
            "name": name, "ph": "i", "s": "t", "cat": process,
            "ts": float(ts), "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(
        self, process: str, thread: str, name: str, ts: float, value: float
    ) -> None:
        """A sampled counter value (``ph: C``) plotted by trace viewers."""
        pid, tid = self._track(process, thread)
        self.events.append({
            "name": name, "ph": "C", "cat": process,
            "ts": float(ts), "pid": pid, "tid": tid,
            "args": {"value": float(value)},
        })

    # ---- lifecycle -------------------------------------------------------

    def clear(self) -> None:
        self.events = []
        self.label = ""
        self._pids = {}
        self._tids = {}

    def to_chrome(self) -> dict:
        """The recording as a Chrome trace-event JSON document.

        Metadata events name every process/thread track so Perfetto and
        ``chrome://tracing`` render resource names instead of raw ids.
        """
        meta: List[dict] = []
        for process, pid in self._pids.items():
            meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        for (process, thread), tid in self._tids.items():
            meta.append({
                "name": "thread_name", "ph": "M",
                "pid": self._pids[process], "tid": tid,
                "args": {"name": thread},
            })
        return {
            "traceEvents": meta + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"label": self.label, "timestamp_unit": "cycles"},
        }

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")


#: The process-wide recorder the simulators report into.
TRACE = TraceRecorder()


class recording:
    """Context manager: clear the recorder, enable it, disable on exit.

    The events stay readable after the block::

        with recording(label="convert/S-O") as trace:
            GridProcessor().run(kernel, records, config)
        trace.save("trace.json")
    """

    def __init__(self, label: str = ""):
        self._label = label
        self._was_enabled = False

    def __enter__(self) -> TraceRecorder:
        self._was_enabled = TRACE.enabled
        TRACE.clear()
        TRACE.label = self._label
        TRACE.enabled = True
        return TRACE

    def __exit__(self, *exc) -> None:
        TRACE.enabled = self._was_enabled


# ---- document helpers ------------------------------------------------------


def load_trace(path) -> dict:
    """Read a Chrome trace-event JSON document from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


_VALID_PHASES = {"X", "B", "E", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(doc: dict) -> List[str]:
    """Structural validation of a Chrome trace document.

    Returns a list of human-readable problems (empty when the document is
    a well-formed trace that viewers will load): the JSON-object shape,
    the required per-event fields, known phase codes, and non-negative
    ``ts``/``dur`` values.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"trace document must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["trace document has no 'traceEvents' list"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing required field {key!r}")
        ph = event.get("ph")
        if ph is not None and ph not in _VALID_PHASES:
            errors.append(f"{where}: unknown phase code {ph!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                errors.append(f"{where}: missing/non-numeric 'ts'")
            elif ts < 0:
                errors.append(f"{where}: negative ts {ts}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
    return errors


def _track_names(doc: dict) -> Dict[Tuple[int, int], Tuple[str, str]]:
    """``(pid, tid) -> (process name, thread name)`` from metadata events."""
    processes: Dict[int, str] = {}
    threads: Dict[Tuple[int, int], str] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            processes[event["pid"]] = event["args"]["name"]
        elif event.get("name") == "thread_name":
            threads[(event["pid"], event["tid"])] = event["args"]["name"]
    return {
        key: (processes.get(key[0], f"pid{key[0]}"), name)
        for key, name in threads.items()
    }


def subsystems(doc: dict) -> List[str]:
    """Process-track (subsystem) names with at least one non-meta event."""
    names = _track_names(doc)
    seen = []
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "M":
            continue
        process = names.get(
            (event.get("pid"), event.get("tid")),
            (f"pid{event.get('pid')}", ""),
        )[0]
        if process not in seen:
            seen.append(process)
    return seen


def trace_span(doc: dict) -> float:
    """Last event end time (cycles) across the whole trace."""
    span = 0.0
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "M":
            continue
        end = event.get("ts", 0) + event.get("dur", 0)
        if end > span:
            span = end
    return span


# ---- analysis: heatmap / utilization / diff --------------------------------


def _node_issue_counts(doc: dict) -> Dict[int, int]:
    """Issue-event count per ALU node (parsed from execution tracks)."""
    names = _track_names(doc)
    counts: Dict[int, int] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "M":
            continue
        process, thread = names.get(
            (event.get("pid"), event.get("tid")), ("", "")
        )
        if process != EXEC or not thread.startswith("node "):
            continue
        try:
            node = int(thread.split()[1])
        except (IndexError, ValueError):
            continue
        counts[node] = counts.get(node, 0) + 1
    return counts


def occupancy_heatmap(doc: dict, rows: int = 8, cols: int = 8) -> str:
    """Text heatmap of per-node issue activity over the ALU array.

    Each cell is one node; intensity is that node's issue count relative
    to the busiest node (the Perfetto-screenshot equivalent the README
    shows).  Memory interfaces sit at column 0, matching Figure 3.
    """
    counts = _node_issue_counts(doc)
    if not counts:
        return "(no execution events in trace)"
    peak = max(counts.values())
    lines = [
        f"ALU issue-occupancy heatmap ({rows}x{cols} nodes, "
        f"peak {peak} issues/node; mem interface at left edge)"
    ]
    top = len(HEAT_RAMP) - 1
    for r in range(rows):
        cells = []
        for c in range(cols):
            n = counts.get(r * cols + c, 0)
            cells.append(HEAT_RAMP[round(top * n / peak)] if peak else " ")
        lines.append(f"  row {r} |" + " ".join(cells) + "|")
    lines.append(f"  scale |{HEAT_RAMP}| 0 -> {peak} issues")
    return "\n".join(lines)


def utilization_table(doc: dict) -> str:
    """Per-resource utilization: events, busy cycles, % of the trace span.

    ALU nodes are aggregated into one ``execution`` row (their count is
    the array size); memory and control tracks are listed individually.
    """
    names = _track_names(doc)
    span = trace_span(doc) or 1.0
    per_track: Dict[Tuple[str, str], List[float]] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "M":
            continue
        key = names.get(
            (event.get("pid"), event.get("tid")),
            (f"pid{event.get('pid')}", f"tid{event.get('tid')}"),
        )
        row = per_track.setdefault(key, [0, 0.0])
        row[0] += 1
        row[1] += event.get("dur", 0) or (1 if event.get("ph") != "C" else 0)

    lines = [
        f"per-resource utilization over {span:.0f} traced cycles",
        f"  {'resource':<24}{'events':>8}{'busy cyc':>10}{'util':>8}",
    ]
    exec_tracks = [k for k in per_track if k[0] == EXEC]
    if exec_tracks:
        events = sum(per_track[k][0] for k in exec_tracks)
        busy = sum(per_track[k][1] for k in exec_tracks)
        util = busy / (span * len(exec_tracks))
        lines.append(
            f"  {EXEC + f' ({len(exec_tracks)} nodes)':<24}"
            f"{events:>8}{busy:>10.0f}{util:>7.1%}"
        )
    for (process, thread), (events, busy) in sorted(per_track.items()):
        if process == EXEC:
            continue
        label = f"{process}/{thread}"
        lines.append(
            f"  {label:<24}{events:>8}{busy:>10.0f}{busy / span:>7.1%}"
        )
    return "\n".join(lines)


def diff_traces(a: dict, b: dict, label_a: str = "A", label_b: str = "B") -> str:
    """Track-by-track comparison of two trace recordings.

    Reports the span delta and, per resource track, the event-count and
    busy-cycle deltas — enough to localize where a configuration or code
    change moved cycles without opening a viewer.
    """
    def track_stats(doc: dict) -> Dict[Tuple[str, str], Tuple[int, float]]:
        names = _track_names(doc)
        stats: Dict[Tuple[str, str], List[float]] = {}
        for event in doc.get("traceEvents", ()):
            if event.get("ph") == "M":
                continue
            key = names.get(
                (event.get("pid"), event.get("tid")),
                (f"pid{event.get('pid')}", f"tid{event.get('tid')}"),
            )
            row = stats.setdefault(key, [0, 0.0])
            row[0] += 1
            row[1] += event.get("dur", 0) or 0
        return {k: (int(v[0]), v[1]) for k, v in stats.items()}

    stats_a, stats_b = track_stats(a), track_stats(b)
    span_a, span_b = trace_span(a), trace_span(b)
    lines = [
        f"trace diff: {label_a} vs {label_b}",
        f"  span: {span_a:.0f} -> {span_b:.0f} cycles "
        f"({span_b - span_a:+.0f})",
        f"  {'resource':<24}{'events':>16}{'busy cyc':>18}",
    ]
    for key in sorted(set(stats_a) | set(stats_b)):
        ea, ba = stats_a.get(key, (0, 0.0))
        eb, bb = stats_b.get(key, (0, 0.0))
        if (ea, ba) == (eb, bb):
            continue
        label = f"{key[0]}/{key[1]}"
        lines.append(
            f"  {label:<24}{ea:>7} -> {eb:<6}{ba:>8.0f} -> {bb:<8.0f}"
        )
    if len(lines) == 3:
        lines.append("  (identical track statistics)")
    return "\n".join(lines)


__all__ = [
    "TRACE",
    "TraceRecorder",
    "recording",
    "EXEC",
    "MEM",
    "CTL",
    "load_trace",
    "validate_chrome_trace",
    "subsystems",
    "trace_span",
    "occupancy_heatmap",
    "utilization_table",
    "diff_traces",
]
