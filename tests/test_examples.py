"""Smoke tests: the bundled examples run and say what they promise.

Only the fast examples run here (the full packet/FFT scenarios take tens
of seconds and are exercised by their own subsystem tests); each is
executed in a subprocess exactly as a user would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "functional check" in out
    assert "S-O" in out and "baseline" in out


def test_architecture_tour():
    out = run_example("architecture_tour.py")
    assert "grid processor" in out
    assert "placement" in out
    assert "register reads" in out


def test_examples_directory_is_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert names >= {
        "quickstart.py", "packet_encryption.py", "graphics_pipeline.py",
        "scientific_fft.py", "architecture_tour.py",
        "universal_mechanisms.py",
    }
