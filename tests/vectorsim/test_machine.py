"""Vector-machine comparator: Section 3's behaviour, measured."""

import pytest

from repro.kernels import spec
from repro.machine import GridProcessor, MachineConfig
from repro.vectorsim import VectorMachine, VectorParams


@pytest.fixture(scope="module")
def vm():
    return VectorMachine()


class TestBasics:
    def test_empty_stream_rejected(self, vm):
        with pytest.raises(ValueError):
            vm.run(spec("fft").kernel(), [])

    def test_strips_scale_linearly(self, vm):
        s = spec("fft")
        short = vm.run(s.kernel(), s.workload(64))
        long = vm.run(s.kernel(), s.workload(256))
        assert long.cycles == 4 * short.cycles

    def test_streaming_kernels_sustain_high_throughput(self, vm):
        result = vm.run(spec("convert").kernel(), spec("convert").workload(256))
        assert result.ops_per_cycle > 4.0


class TestArchitecturalBehaviours:
    def test_chaining_speeds_up_dependence_chains(self):
        s = spec("md5")  # long serial chain: chaining matters most
        records = s.workload(128)
        chained = VectorMachine(VectorParams(chaining=True))
        unchained = VectorMachine(VectorParams(chaining=False))
        assert (chained.run(s.kernel(), records).cycles
                < unchained.run(s.kernel(), records).cycles)

    def test_gathers_penalize_lookup_kernels(self, vm):
        """Section 3: 'Programs with frequent irregular memory references
        or accesses to lookup tables performed poorly' on vector machines."""
        blowfish = vm.run(spec("blowfish").kernel(),
                          spec("blowfish").workload(128))
        fft = vm.run(spec("fft").kernel(), spec("fft").workload(128))
        assert blowfish.ops_per_cycle < 0.4 * fft.ops_per_cycle

    def test_masked_execution_pays_worst_case(self, vm):
        """Variable loops run all iterations under vector masks: useful
        throughput drops by the dead-work fraction."""
        s = spec("vertex-skinning")
        records = s.workload(128)
        result = vm.run(s.kernel(), records)
        worst_case_ops = s.kernel().useful_ops() * len(records)
        assert result.useful_ops < worst_case_ops  # masked-off bones

    def test_more_lanes_help_compute_bound_kernels(self):
        s = spec("dct")
        records = s.workload(64)
        narrow = VectorMachine(VectorParams(lanes=4))
        wide = VectorMachine(VectorParams(lanes=32))
        assert (wide.run(s.kernel(), records).cycles
                < narrow.run(s.kernel(), records).cycles)

    def test_stream_bandwidth_bounds_skinny_kernels(self):
        s = spec("lu")  # 2 ops per 3 words: memory-bound
        records = s.workload(256)
        thin = VectorMachine(VectorParams(stream_bandwidth=2))
        fat = VectorMachine(VectorParams(stream_bandwidth=32))
        assert (fat.run(s.kernel(), records).cycles
                < thin.run(s.kernel(), records).cycles)


class TestCrossSubstrateShape:
    def test_vector_competitive_on_streaming_weak_on_lookups(self, vm):
        """The grid's flexible morphs beat the vector machine exactly
        where the paper says vector machines fall short."""
        processor = GridProcessor()
        # blowfish: vector gathers vs the grid's M-D lookup stores.
        s = spec("blowfish")
        records = s.workload(256)
        vec = vm.run(s.kernel(), records)
        grid = processor.run(s.kernel(), records, MachineConfig.M_D())
        assert grid.cycles < vec.cycles
        # fft: the vector machine is a fine home (the paper's Tarantula
        # row beats TRIPS there) — the grid does not win big.
        s = spec("fft")
        records = s.workload(256)
        vec = vm.run(s.kernel(), records)
        grid = processor.run(s.kernel(), records, MachineConfig.S())
        assert vec.cycles < 3 * grid.cycles
