"""Fault injection: damaged caches, dying pools and interrupts must all
degrade gracefully — never wrong results."""

import json

from repro.check.faults import (
    FaultPlan,
    check_cache_corruption,
    check_interrupt,
    check_worker_failure,
    inject_cache_faults,
    run_fault_suite,
)


def _fake_cache(tmp_path, entries=6):
    sub = tmp_path / "ab"
    sub.mkdir(parents=True)
    for i in range(entries):
        (sub / f"entry{i}.json").write_text(
            json.dumps({"schema": 1, "cycles": i, "kernel": "k"}),
            encoding="utf-8",
        )
    return tmp_path


class TestInjection:
    def test_every_requested_fault_lands(self, tmp_path):
        _fake_cache(tmp_path, entries=6)
        plan = FaultPlan(corrupt_entries=1, truncate_entries=1,
                         mismatch_entries=1, non_dict_entries=1, seed=3)
        assert inject_cache_faults(tmp_path, plan) == 4
        unparsable = healthy = mismatched = non_dict = 0
        for path in sorted(tmp_path.glob("*/*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8",
                                                errors="replace"))
            except ValueError:
                unparsable += 1
                continue
            if not isinstance(doc, dict):
                non_dict += 1
            elif "no_such_field" in doc:
                mismatched += 1
            else:
                healthy += 1
        assert unparsable == 2      # corrupt + truncated
        assert non_dict == 1
        assert mismatched == 1
        assert healthy == 2

    def test_plan_larger_than_population_takes_what_exists(self, tmp_path):
        _fake_cache(tmp_path, entries=2)
        plan = FaultPlan(corrupt_entries=5, truncate_entries=5)
        assert inject_cache_faults(tmp_path, plan) == 2

    def test_injection_is_deterministic_in_the_seed(self, tmp_path):
        a = _fake_cache(tmp_path / "a", entries=4)
        b = _fake_cache(tmp_path / "b", entries=4)
        plan = FaultPlan(corrupt_entries=2, seed=11)
        inject_cache_faults(a, plan)
        inject_cache_faults(b, plan)
        names_a = sorted(p.name for p in a.glob("*/*.json")
                         if b"not json" in p.read_bytes())
        names_b = sorted(p.name for p in b.glob("*/*.json")
                         if b"not json" in p.read_bytes())
        assert names_a == names_b


class TestScenarios:
    def test_cache_corruption_degrades_to_misses(self):
        check = check_cache_corruption()
        assert check.passed, check.detail

    def test_worker_failure_falls_back_to_serial(self):
        check = check_worker_failure(jobs=3)
        assert check.passed, check.detail

    def test_interrupt_propagates_without_torn_state(self):
        check = check_interrupt(after_points=2)
        assert check.passed, check.detail

    def test_full_suite_is_green(self):
        checks = run_fault_suite(jobs=2)
        assert [c.name for c in checks] == [
            "cache-corruption", "worker-failure", "interrupt",
        ]
        assert all(c.passed for c in checks), \
            [c.render() for c in checks if not c.passed]
