"""Top-level package API."""

import repro


def test_version():
    assert repro.__version__


def test_public_names_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickrun_returns_results(capsys):
    results = repro.quickrun("fft", records=64)
    out = capsys.readouterr().out
    assert "baseline" in out and "S-O" in out
    assert set(results) >= {"baseline", "S", "S-O", "S-O-D", "M", "M-D"}
    assert all(r.cycles > 0 for r in results.values())


def test_run_kernel_convenience():
    s = repro.spec("convert")
    result = repro.run_kernel(
        s.kernel(), s.workload(32), repro.MachineConfig.S_O()
    )
    assert result.kernel == "convert"
    assert result.ops_per_cycle > 0
