"""Store-buffer coalescing and drain-rate behaviour."""

import pytest

from repro.memory.storebuffer import StoreBuffer


class TestDrainRate:
    def test_drain_rate_paces_independent_lines(self):
        sb = StoreBuffer(line_words=8, drain_words_per_cycle=2)
        times = [sb.push(line * 8, cycle=0) for line in range(4)]
        # 2 words per cycle: completions at 0.5, 1.0, 1.5, 2.0.
        assert times == [0.5, 1.0, 1.5, 2.0]
        assert sb.drain_complete_cycle() == 2

    def test_late_arrival_restarts_drain_clock(self):
        sb = StoreBuffer(drain_words_per_cycle=2)
        sb.push(0, cycle=0)
        t = sb.push(8, cycle=100)
        assert t == pytest.approx(100.5)


class TestCoalescing:
    def test_same_line_coalesces(self):
        sb = StoreBuffer(line_words=8, drain_words_per_cycle=1)
        sb.push(0, cycle=0)
        sb.push(1, cycle=0)  # same line, still pending
        assert sb.stats.coalesced == 1

    def test_different_lines_do_not_coalesce(self):
        sb = StoreBuffer(line_words=8, drain_words_per_cycle=1)
        sb.push(0, cycle=0)
        sb.push(8, cycle=0)
        assert sb.stats.coalesced == 0

    def test_reset(self):
        sb = StoreBuffer()
        sb.push(0, cycle=5)
        sb.reset()
        assert sb.drain_complete_cycle() == 0
        assert sb.stats.stores == 0


class TestWordsDrained:
    def test_counts_non_coalesced_words(self):
        """``words_drained`` counts words retired by the drain engine —
        the counter the stats once mislabeled ``lines_drained``."""
        sb = StoreBuffer(line_words=8, drain_words_per_cycle=1)
        sb.push(0, cycle=0)
        sb.push(1, cycle=0)   # same line, coalesced: not drained again
        sb.push(8, cycle=0)   # new line: second drained word
        assert sb.stats.stores == 3
        assert sb.stats.coalesced == 1
        assert sb.stats.words_drained == 2

    def test_push_many_counts_identically(self):
        loop = StoreBuffer(line_words=8, drain_words_per_cycle=1)
        batch = StoreBuffer(line_words=8, drain_words_per_cycle=1)
        pushes = [(0, 0), (1, 0), (8, 0), (9, 0), (16, 1)]
        for address, cycle in pushes:
            loop.push(address, cycle)
        batch.push_many(pushes)
        assert batch.stats.words_drained == loop.stats.words_drained


class TestFifoEviction:
    """Capacity eviction retires the *oldest* pending line (the buffer
    previously popped an arbitrary set element)."""

    def test_push_evicts_oldest_line(self):
        sb = StoreBuffer(line_words=8, capacity_lines=2)
        sb.push(0, cycle=0)    # line 0
        sb.push(8, cycle=1)    # line 1
        sb.push(16, cycle=2)   # line 2 -> line 0 (oldest) must go
        assert set(sb._pending_lines) == {1, 2}
        sb.push(24, cycle=3)   # line 3 -> line 1 must go
        assert set(sb._pending_lines) == {2, 3}

    def test_push_many_evicts_oldest_line(self):
        sb = StoreBuffer(line_words=8, capacity_lines=2)
        sb.push_many([(line * 8, line) for line in range(4)])
        assert set(sb._pending_lines) == {2, 3}

    def test_reinserted_line_keeps_its_original_age(self):
        sb = StoreBuffer(line_words=8, capacity_lines=3)
        sb.push(0, cycle=0)     # line 0 (oldest)
        sb.push(8, cycle=1)     # line 1
        sb.push(1, cycle=100)   # line 0 again, past the drain window:
        #                         no refresh — line 0 stays oldest
        sb.push(16, cycle=101)  # line 2
        sb.push(24, cycle=102)  # line 3 -> evicts line 0, not line 1
        assert set(sb._pending_lines) == {1, 2, 3}

    def test_eviction_keeps_distinct_line_timing(self):
        """For a stream of distinct lines, capacity eviction is pure
        bookkeeping: drain times match an effectively unbounded buffer."""
        bounded = StoreBuffer(line_words=8, capacity_lines=2)
        unbounded = StoreBuffer(line_words=8, capacity_lines=10_000)
        pushes = [(line * 8, line // 2) for line in range(12)]
        times_bounded = [bounded.push(a, c) for a, c in pushes]
        times_unbounded = [unbounded.push(a, c) for a, c in pushes]
        assert times_bounded == times_unbounded
        assert bounded.stats == unbounded.stats
