"""Benchmark: regenerate Table 4 (baseline TRIPS ops/cycle).

Simulates all 13 performance benchmarks on the unmorphed ILP baseline
and checks the paper's domain-level observation: "Only the DSP programs
sustain a reasonably high computation throughput ... while all other
applications sustain low throughputs."
"""

from repro.harness.experiments import ExperimentContext, table4


def test_table4_baseline(one_shot):
    result = one_shot(lambda: table4(ExperimentContext()))
    by_name = result.by_name()

    dsp = [by_name[n] for n in ("convert", "dct", "highpassfilter")]
    others = [
        by_name[n]
        for n in ("fft", "lu", "md5", "blowfish", "rijndael",
                  "vertex-simple", "fragment-simple", "vertex-reflection",
                  "fragment-reflection", "vertex-skinning")
    ]
    # DSP codes sustain the highest baseline throughput (paper: ~11 vs ~4).
    assert min(dsp) > max(others)
    assert sum(dsp) / len(dsp) > 1.5 * (sum(others) / len(others))

    # Every measured level within a small factor of the paper's number.
    for name, measured, paper in result.rows:
        assert 0.2 < measured / paper < 3.5, (name, measured, paper)

    print()
    print(result.render())
