"""First-order energy accounting for the mechanisms.

Section 7 names power evaluation as future work, and the mechanisms'
energy story is implicit throughout the paper: instruction
revitalization exists to avoid "instruction cache pressure and dynamic
cache access power" (Section 4.3), operand revitalization to avoid
register-file access energy (Section 4.4), and the L0 data store to keep
lookups out of the L1 ("consumes little storage space, but tremendous
cache bandwidth", Section 2.1.1).

This model turns simulated event counts into picojoules with
per-structure energy constants (100nm-class round numbers).  It is a
*relative* instrument: compare configurations on the same kernel, not
absolute silicon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.kernel import Kernel
from ..isa.opcodes import OpClass
from ..machine.config import MachineConfig
from ..machine.mimd_engine import rolled_instruction_count
from ..machine.params import MachineParams
from ..machine.stats import RunResult


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event energy in picojoules (100nm-class estimates)."""

    int_op: float = 8.0
    fp_op: float = 30.0
    issue_overhead: float = 4.0     # wakeup/select or pipeline control
    regfile_read: float = 12.0
    l0_access: float = 3.0          # small per-node SRAM
    l1_access: float = 50.0
    smc_word: float = 35.0          # streamed bank access, no tag check
    l2_tagged_word: float = 80.0    # tagged L2 path (misses)
    network_hop: float = 5.0
    inst_fetch: float = 20.0        # I-cache read + decode + map, per inst
    revitalize_broadcast: float = 200.0
    dma_word: float = 10.0


@dataclass
class EnergyBreakdown:
    """Energy by structure for one run (picojoules)."""

    kernel: str
    config: str
    records: int
    by_structure: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return sum(self.by_structure.values())

    @property
    def pj_per_record(self) -> float:
        return self.total_pj / self.records if self.records else 0.0

    def render(self) -> str:
        lines = [f"{self.kernel}/{self.config}: "
                 f"{self.pj_per_record:,.0f} pJ/record"]
        for name, value in sorted(
            self.by_structure.items(), key=lambda kv: -kv[1]
        ):
            share = 100 * value / self.total_pj if self.total_pj else 0
            lines.append(f"  {name:18s} {value / self.records:10,.1f} "
                         f"pJ/rec  ({share:4.1f}%)")
        return "\n".join(lines)


def _compute_op_energy(kernel: Kernel, constants: EnergyConstants) -> float:
    """Average execution energy of one kernel-body instruction."""
    total = 0.0
    for inst in kernel.body:
        if inst.op.opclass in (OpClass.FP_ADD, OpClass.FP_MUL,
                               OpClass.FP_DIV, OpClass.FP_SPECIAL):
            total += constants.fp_op
        else:
            total += constants.int_op
    return total / max(1, len(kernel.body))


def estimate_energy(
    kernel: Kernel,
    result: RunResult,
    config: MachineConfig,
    params: Optional[MachineParams] = None,
    constants: EnergyConstants = EnergyConstants(),
) -> EnergyBreakdown:
    """Estimate where a run's energy went.

    Uses the run's measured per-window event counts where the simulators
    recorded them, and the kernel's structure for the rest.
    """
    params = params or MachineParams()
    n = result.records
    body = len(kernel.body)
    breakdown: Dict[str, float] = {}

    # Execution: every body instruction executes once per record (SIMD
    # nullification still spends the issue), plus issue control.
    per_op = _compute_op_energy(kernel, constants)
    executed = result.detail.get("executed")
    ops = executed if executed else float(body * n)
    breakdown["functional units"] = ops * per_op
    breakdown["issue/control"] = ops * constants.issue_overhead

    # Instruction supply.
    if config.local_pc:
        # One-time broadcast of the rolled kernel + per-inst L0 I-fetch.
        breakdown["instruction fetch"] = (
            rolled_instruction_count(kernel) * constants.inst_fetch
            + ops * constants.l0_access
        )
    elif config.inst_revitalize:
        windows = max(1, math.ceil(
            n / (result.window.iterations if result.window else 1)
        ))
        mapped = (result.window.machine_instructions
                  if result.window else body)
        breakdown["instruction fetch"] = mapped * constants.inst_fetch
        breakdown["revitalize"] = windows * constants.revitalize_broadcast
    else:
        # Baseline refetches every block, every window.
        if result.window:
            windows = max(1, math.ceil(n / result.window.iterations))
            fetched = result.window.machine_instructions * windows
        else:
            fetched = body * n
        breakdown["instruction fetch"] = fetched * constants.inst_fetch

    # Scalar constants.
    n_consts = len(kernel.scalar_constants())
    if n_consts:
        if config.operand_revitalize or config.local_pc:
            reads = n_consts  # delivered once (or held in node registers)
        elif result.window:
            windows = max(1, math.ceil(n / result.window.iterations))
            reads = result.window.detail.get(
                "regfile_reads", n_consts * result.window.iterations
            ) * windows
        else:
            reads = n_consts * n
        breakdown["register file"] = reads * constants.regfile_read

    # Indexed constants.
    luts = kernel.count_lut_accesses() * n
    if luts:
        if config.l0_data:
            breakdown["L0 data store"] = luts * constants.l0_access
        else:
            breakdown["L1 (lookups)"] = luts * constants.l1_access

    # Irregular accesses always ride the L1.
    irregular = kernel.count_irregular() * n
    if irregular:
        breakdown["L1 (irregular)"] = irregular * constants.l1_access

    # Regular record traffic.
    words = (kernel.record_in + kernel.record_out) * n
    if config.smc_stream:
        breakdown["SMC streaming"] = words * constants.smc_word
        breakdown["DMA engines"] = words * constants.dma_word
    else:
        breakdown["L1 (records)"] = words * constants.l1_access

    # Operand network.
    if result.window:
        windows = max(1, math.ceil(n / result.window.iterations))
        hops = result.window.detail.get("network_hops", 0.0) * windows
    else:
        # MIMD: record words + stores cross the row, results stay local.
        hops = words * (params.cols / 2.0)
    breakdown["operand network"] = hops * constants.network_hop

    return EnergyBreakdown(
        kernel=kernel.name,
        config=result.config,
        records=n,
        by_structure=breakdown,
    )
